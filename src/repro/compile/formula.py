"""Compile invariant formulas into specialized Python closures.

The checker's invariant oracle evaluates first-order formulas against a
finite model thousands of times per trial.  The pure interpreter
(:func:`repro.check.oracles.eval_formula`) walks the AST per
evaluation; this module walks it **once per spec** and emits plain
Python source -- quantifier loops unrolled into ``for``/``all``/``any``
over the finite domain, relation lookups bound to local variables,
numeric terms flattened into dict lookups -- which is then ``compile()``d
and ``exec``'d into one closure per invariant.

The generated code reproduces the interpreter bit for bit:

- quantifier enumeration order is the ``itertools.product`` order over
  per-sort constant pools sorted by name (nested ``for`` loops in
  binder order are exactly that product);
- witness bindings are the ``sorted((var.name, const.name))`` pairs the
  interpreter emits, truncated at the same ``max_witnesses`` count;
- shadowing follows :func:`repro.logic.transform.substitute` (bound
  variables shadow outer bindings), which fresh Python locals per
  binder give for free;
- absent relations/numerics read as empty, absent cells as 0, exactly
  like the interpreter's ``dict.get`` defaults.

Anything the interpreter would reject at runtime (free variables,
wildcards outside cardinalities, sorts unknown to the schema) raises
:class:`Uncompilable` at build time and the caller falls back to the
interpreter, preserving the original error behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Callable

from repro.logic.ast import (
    Add,
    And,
    Atom,
    Card,
    Cmp,
    Const,
    Exists,
    FalseF,
    ForAll,
    Formula,
    Iff,
    Implies,
    IntConst,
    Not,
    NumPred,
    NumTerm,
    Or,
    Param,
    TrueF,
    Var,
    Wildcard,
)
from repro.obs import REGISTRY
from repro.spec.application import ApplicationSpec
from repro.spec.predicates import Schema


class Uncompilable(Exception):
    """The formula cannot be compiled; use the interpreter instead."""


def _tuple_literal(parts: list[str]) -> str:
    """A Python tuple literal over already-rendered element sources."""
    if not parts:
        return "()"
    if len(parts) == 1:
        return f"({parts[0]},)"
    return "(" + ", ".join(parts) + ")"


class _Codegen:
    """Shared prologue bindings + expression emitter for one invariant.

    The prologue hoists every relation/numeric/parameter/cardinality
    lookup out of the quantifier loops: the generated body touches only
    local variables and tuple membership/dict ``get`` calls.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.prologue: list[str] = []
        self._relations: dict[str, str] = {}
        self._numerics: dict[str, str] = {}
        self._params: dict[str, str] = {}
        self._groups: dict[tuple[str, tuple[int, ...]], str] = {}
        self._domains: dict[str, str] = {}
        self._header_done: set[str] = set()
        self._n_vars = 0

    # -- prologue bindings ---------------------------------------------------

    def _header(self, line: str) -> None:
        if line not in self._header_done:
            self._header_done.add(line)
            self.prologue.insert(len(self._header_done) - 1, line)

    def relation_local(self, name: str) -> str:
        local = self._relations.get(name)
        if local is None:
            self._header("_relations = interp.relations")
            local = f"r{len(self._relations)}"
            self._relations[name] = local
            self.prologue.append(
                f"{local} = _relations.get({name!r}) or _EMPTY_SET"
            )
        return local

    def numeric_local(self, name: str) -> str:
        local = self._numerics.get(name)
        if local is None:
            self._header("_numerics = interp.numerics")
            local = f"n{len(self._numerics)}"
            self._numerics[name] = local
            self.prologue.append(
                f"{local} = _numerics.get({name!r}) or _EMPTY_MAP"
            )
        return local

    def param_local(self, name: str) -> str:
        local = self._params.get(name)
        if local is None:
            local = f"p{len(self._params)}"
            self._params[name] = local
            self.prologue.append(f"{local} = interp.params[{name!r}]")
        return local

    def group_local(self, pred: str, fixed: tuple[int, ...]) -> str:
        local = self._groups.get((pred, fixed))
        if local is None:
            local = f"g{len(self._groups)}"
            self._groups[(pred, fixed)] = local
            self.prologue.append(
                f"{local} = interp.card_group({pred!r}, {fixed!r})"
            )
        return local

    def domain_local(self, var: Var) -> str:
        name = var.sort.name
        if name not in self.schema.sorts:
            raise Uncompilable(
                f"quantified sort {name} is not declared in the schema"
            )
        local = self._domains.get(name)
        if local is None:
            local = f"d{len(self._domains)}"
            self._domains[name] = local
            self.prologue.append(f"{local} = doms[{name!r}]")
        return local

    def fresh_var(self) -> str:
        self._n_vars += 1
        return f"x{self._n_vars - 1}"

    # -- expression emission -------------------------------------------------

    def term(self, term, env: dict[Var, str]) -> str:
        if isinstance(term, Const):
            return repr(term.name)
        if isinstance(term, Var):
            local = env.get(term)
            if local is None:
                raise Uncompilable(f"free variable {term.name}")
            return local
        raise Uncompilable(f"unsupported term {term!r}")

    def num(self, term: NumTerm, env: dict[Var, str]) -> str:
        if isinstance(term, IntConst):
            return repr(term.value)
        if isinstance(term, Param):
            return self.param_local(term.name)
        if isinstance(term, NumPred):
            local = self.numeric_local(term.pred.name)
            key = _tuple_literal([self.term(a, env) for a in term.args])
            return f"{local}.get({key}, 0)"
        if isinstance(term, Card):
            fixed = tuple(
                i
                for i, arg in enumerate(term.args)
                if not isinstance(arg, Wildcard)
            )
            group = self.group_local(term.pred.name, fixed)
            key = _tuple_literal(
                [self.term(term.args[i], env) for i in fixed]
            )
            return f"{group}.get({key}, 0)"
        if isinstance(term, Add):
            if not term.terms:
                return "0"
            return "(" + " + ".join(self.num(t, env) for t in term.terms) + ")"
        raise Uncompilable(f"unknown numeric term {term!r}")

    def expr(self, formula: Formula, env: dict[Var, str]) -> str:
        if isinstance(formula, TrueF):
            return "True"
        if isinstance(formula, FalseF):
            return "False"
        if isinstance(formula, Atom):
            local = self.relation_local(formula.pred.name)
            row = _tuple_literal([self.term(a, env) for a in formula.args])
            return f"({row} in {local})"
        if isinstance(formula, Cmp):
            lhs = self.num(formula.lhs, env)
            rhs = self.num(formula.rhs, env)
            return f"({lhs} {formula.op} {rhs})"
        if isinstance(formula, Not):
            return f"(not {self.expr(formula.arg, env)})"
        if isinstance(formula, And):
            if not formula.args:
                return "True"
            return (
                "(" + " and ".join(self.expr(a, env) for a in formula.args) + ")"
            )
        if isinstance(formula, Or):
            if not formula.args:
                return "False"
            return (
                "(" + " or ".join(self.expr(a, env) for a in formula.args) + ")"
            )
        if isinstance(formula, Implies):
            lhs = self.expr(formula.lhs, env)
            rhs = self.expr(formula.rhs, env)
            return f"((not {lhs}) or {rhs})"
        if isinstance(formula, Iff):
            lhs = self.expr(formula.lhs, env)
            rhs = self.expr(formula.rhs, env)
            return f"({lhs} == {rhs})"
        if isinstance(formula, (ForAll, Exists)):
            return self._quantifier(formula, env)
        raise Uncompilable(f"unknown formula node {formula!r}")

    def _quantifier(self, formula: ForAll | Exists, env: dict[Var, str]) -> str:
        if not formula.vars:
            # product of zero pools yields exactly one (empty) binding.
            return self.expr(formula.body, env)
        inner = dict(env)
        generators = []
        for var in formula.vars:
            pool = self.domain_local(var)
            local = self.fresh_var()
            inner[var] = local  # later duplicate binders shadow earlier
            generators.append(f"for {local} in {pool}")
        body = self.expr(formula.body, inner)
        head = "all" if isinstance(formula, ForAll) else "any"
        return f"{head}({body} " + " ".join(generators) + ")"


# ---------------------------------------------------------------------------
# Invariant -> source -> closure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompiledInvariant:
    """One invariant's generated source plus its executable closure.

    ``fn(interp, doms, region, max_witnesses, out)`` appends
    :class:`~repro.check.oracles.Violation` records to ``out`` exactly
    as the interpreter's :class:`InvariantOracle` would.
    """

    name: str
    source: str
    fn: Callable


def _witness_expr(formula: ForAll, env: dict[Var, str]) -> str:
    """Source for the interpreter-identical witness tuple.

    The interpreter sorts ``(var.name, const.name)`` pairs; with
    distinct variable names the order is fully determined at compile
    time, so the common case emits a pre-sorted literal.  Colliding
    names (distinct sorts) fall back to a runtime ``sorted``.
    """
    names = [v.name for v in formula.vars]
    pairs = [f"({v.name!r}, {env[v]})" for v in formula.vars]
    if len(set(names)) == len(names):
        order = sorted(range(len(names)), key=lambda i: names[i])
        return _tuple_literal([pairs[i] for i in order])
    return f"tuple(sorted({_tuple_literal(pairs)}))"


def generate_invariant_source(invariant, schema: Schema) -> str:
    """Emit the Python source of one invariant's ``check`` closure."""
    formula = invariant.formula
    name = invariant.name or invariant.describe()
    gen = _Codegen(schema)
    body: list[str] = []
    if isinstance(formula, ForAll) and formula.vars:
        if len(set(formula.vars)) != len(formula.vars):
            raise Uncompilable("duplicate bound variable in invariant")
        env: dict[Var, str] = {}
        loops: list[tuple[str, str]] = []
        for var in formula.vars:
            pool = gen.domain_local(var)
            local = gen.fresh_var()
            env[var] = local
            loops.append((local, pool))
        condition = gen.expr(formula.body, env)
        witness = _witness_expr(formula, env)
        body.append("    count = 0")
        body.append("    _append = out.append")
        indent = "    "
        for local, pool in loops:
            body.append(f"{indent}for {local} in {pool}:")
            indent += "    "
        body.append(f"{indent}if {condition}:")
        body.append(f"{indent}    continue")
        body.append(
            f"{indent}_append(_Violation('invariant', region, "
            f"{name!r}, {witness}))"
        )
        body.append(f"{indent}count += 1")
        body.append(f"{indent}if count >= max_witnesses:")
        body.append(f"{indent}    return")
    else:
        condition = gen.expr(formula, {})
        body.append(f"    if not {condition}:")
        body.append(
            f"        out.append(_Violation('invariant', region, {name!r}))"
        )
    lines = ["def check(interp, doms, region, max_witnesses, out):"]
    lines.extend("    " + p for p in gen.prologue)
    lines.extend(body)
    return "\n".join(lines) + "\n"


_BASE_NAMESPACE: dict | None = None


def _namespace() -> dict:
    # Imported lazily: check.oracles imports this package back for the
    # compiled fast path, so the dependency must not be module-level.
    global _BASE_NAMESPACE
    if _BASE_NAMESPACE is None:
        from repro.check.oracles import Violation

        _BASE_NAMESPACE = {
            "_Violation": Violation,
            "_EMPTY_SET": frozenset(),
            "_EMPTY_MAP": MappingProxyType({}),
        }
    return _BASE_NAMESPACE


def load_invariant(name: str, source: str) -> CompiledInvariant:
    """``compile()`` + ``exec`` one generated source into a closure.

    Shared by the fresh-codegen path and the disk-cache path: a cached
    source byte-identical to a generated one yields an identical
    closure, so cache hits cannot change behaviour.
    """
    code = compile(source, f"<compiled-invariant {name!r}>", "exec")
    namespace = dict(_namespace())
    exec(code, namespace)  # noqa: S102 - self-generated source only
    return CompiledInvariant(name=name, source=source, fn=namespace["check"])


def compile_invariant(invariant, schema: Schema) -> CompiledInvariant:
    name = invariant.name or invariant.describe()
    return load_invariant(name, generate_invariant_source(invariant, schema))


# ---------------------------------------------------------------------------
# Spec-level artifacts
# ---------------------------------------------------------------------------


def build_domain_extractor(schema: Schema) -> Callable:
    """A closure computing the finite domain of an interpretation.

    Returns ``interp -> {sort_name: (const_name, ...)}`` replicating
    :meth:`repro.check.oracles.Interpretation.domain`: every schema
    sort is seeded (possibly empty), every constant mentioned by a
    declared predicate's rows/cells is noted under its argument sort,
    and pools are sorted by constant name.
    """
    sort_names = tuple(schema.sorts)
    pred_sorts = {
        name: tuple(s.name for s in decl.arg_sorts)
        for name, decl in schema.predicates.items()
    }

    def extract(interp) -> dict[str, tuple[str, ...]]:
        per: dict[str, set[str]] = {name: set() for name in sort_names}
        for source in (interp.relations, interp.numerics):
            for pred_name, rows in source.items():
                sorts = pred_sorts.get(pred_name)
                if sorts is None:
                    continue
                for row in rows:
                    for sort_name, value in zip(sorts, row):
                        pool = per.get(sort_name)
                        if pool is None:
                            pool = per[sort_name] = set()
                        pool.add(
                            value if type(value) is str else str(value)
                        )
        return {name: tuple(sorted(pool)) for name, pool in per.items()}

    return extract


_FORMULA_EVALS = REGISTRY.counter("check.formula.evals")


class CompiledSpec:
    """Every non-trivial invariant of one spec, compiled and ready.

    Drop-in for the interpreter loop in
    :meth:`repro.check.oracles.InvariantOracle.check`: same violations,
    same witnesses, same order.
    """

    __slots__ = ("key", "invariants", "_extract")

    def __init__(
        self,
        key: str,
        invariants: tuple[CompiledInvariant, ...],
        domain_extractor: Callable,
    ) -> None:
        self.key = key
        self.invariants = invariants
        self._extract = domain_extractor

    def domains(self, interp) -> dict[str, tuple[str, ...]]:
        return self._extract(interp)

    def check(self, interp, region: str, max_witnesses: int = 5) -> list:
        doms = self._extract(interp)
        out: list = []
        for invariant in self.invariants:
            _FORMULA_EVALS.value += 1
            invariant.fn(interp, doms, region, max_witnesses, out)
        return out


def generate_spec_sources(spec: ApplicationSpec) -> list[tuple[str, str]]:
    """(name, source) per compilable invariant, in spec order.

    ``TrueF`` invariants (declared-category placeholders) are skipped
    exactly as the interpreter skips them.
    """
    sources: list[tuple[str, str]] = []
    for invariant in spec.invariants:
        if isinstance(invariant.formula, TrueF):
            continue
        name = invariant.name or invariant.describe()
        sources.append(
            (name, generate_invariant_source(invariant, spec.schema))
        )
    return sources


def compile_spec(spec: ApplicationSpec, key: str = "") -> CompiledSpec:
    """Compile every invariant of ``spec`` (raises :class:`Uncompilable`)."""
    compiled = tuple(
        load_invariant(name, source)
        for name, source in generate_spec_sources(spec)
    )
    return CompiledSpec(key, compiled, build_domain_extractor(spec.schema))
