"""Latency and throughput metrics for simulated runs.

Collects per-operation latency samples inside a measurement window
(excluding warm-up), plus named counters (e.g. invariant violations for
Figure 7).  Summaries expose the statistics the paper plots: mean,
percentiles, standard deviation, and throughput over the window.

Percentiles come from the repo-wide shared quantile implementation
(:func:`repro.obs.quantile`); an empty sample set yields ``None``
statistics rather than fabricated zeros -- a short or faulty run with
no completed operations is a normal outcome, not an error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs import quantile_sorted


@dataclass
class LatencyStats:
    """Summary statistics over a set of latency samples (ms).

    All fields except ``count`` are ``None`` when there are no samples.
    """

    count: int
    mean: float | None
    stddev: float | None
    p50: float | None
    p95: float | None
    p99: float | None
    minimum: float | None
    maximum: float | None

    @classmethod
    def of(cls, samples: list[float]) -> "LatencyStats":
        if not samples:
            return cls(0, None, None, None, None, None, None, None)
        ordered = sorted(samples)
        count = len(ordered)
        mean = sum(ordered) / count
        variance = sum((s - mean) ** 2 for s in ordered) / count
        return cls(
            count=count,
            mean=mean,
            stddev=math.sqrt(variance),
            p50=quantile_sorted(ordered, 0.50),
            p95=quantile_sorted(ordered, 0.95),
            p99=quantile_sorted(ordered, 0.99),
            minimum=ordered[0],
            maximum=ordered[-1],
        )

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }


@dataclass
class StaleWindow:
    """Running stats over remote-visibility lag (commit -> apply, ms).

    On a lossy network a record can spend seconds in drops, backoff and
    retransmission before a remote replica applies it; this is the
    "staleness window" the chaos experiments report.  Kept as running
    aggregates (not samples) because every remote apply contributes.
    """

    count: int = 0
    total_ms: float = 0.0
    max_ms: float = 0.0

    def record(self, lag_ms: float) -> None:
        self.count += 1
        self.total_ms += lag_ms
        self.max_ms = max(self.max_ms, lag_ms)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0


class MetricsCollector:
    """Accumulates samples and counters during a run."""

    def __init__(
        self, warmup_ms: float = 0.0, window_ms: float | None = None
    ) -> None:
        self._warmup = warmup_ms
        self._window = window_ms
        # Precomputed window end: the per-event check is two float
        # comparisons against constants -- one shared, branch-predictable
        # helper instead of hand-inlined None checks at every call site.
        self._window_end = (
            warmup_ms + window_ms if window_ms is not None else math.inf
        )
        self._samples: dict[str, list[float]] = {}
        self._counters: dict[str, int] = {}
        self._count_points: dict[str, list[float]] = {}
        self._values: dict[str, list[float]] = {}

    def _in_window(self, now: float) -> bool:
        return self._warmup <= now <= self._window_end

    def record_latency(self, now: float, op: str, latency_ms: float) -> None:
        # Runs once per completed operation (the collector's hot path).
        if not (self._warmup <= now <= self._window_end):
            return
        samples = self._samples.get(op)
        if samples is None:
            samples = self._samples[op] = []
        samples.append(latency_ms)

    def increment(self, now: float, counter: str, by: int = 1) -> None:
        if not self._in_window(now):
            return
        self._counters[counter] = self._counters.get(counter, 0) + by
        self._count_points.setdefault(counter, []).append(now)

    def observe(self, now: float, gauge: str, value: float) -> None:
        """Record one sample of a sampled quantity (e.g. buffer depth).

        Unlike :meth:`increment`, observations ignore the measurement
        window: chaos metrics (pending depth, convergence lag) are
        meaningful during warm-up and drain too.
        """
        self._values.setdefault(gauge, []).append(value)

    # -- summaries --------------------------------------------------------------

    def operations(self) -> list[str]:
        return sorted(self._samples)

    def stats(self, op: str | None = None) -> LatencyStats:
        """Stats for one operation, or across all when ``op`` is None."""
        if op is not None:
            return LatencyStats.of(self._samples.get(op, []))
        merged: list[float] = []
        for samples in self._samples.values():
            merged.extend(samples)
        return LatencyStats.of(merged)

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        return dict(sorted(self._counters.items()))

    def values(self, gauge: str) -> list[float]:
        return list(self._values.get(gauge, ()))

    def max_value(self, gauge: str) -> float:
        samples = self._values.get(gauge)
        return max(samples) if samples else 0.0

    def total_operations(self) -> int:
        return sum(len(samples) for samples in self._samples.values())

    def throughput(self, window_ms: float) -> float:
        """Completed operations per second over the window."""
        if window_ms <= 0:
            return 0.0
        return self.total_operations() / (window_ms / 1000.0)

    def snapshot(self) -> dict:
        """One nested, JSON-safe view of everything collected.

        Mirrors :meth:`repro.obs.MetricsRegistry.snapshot`: counters,
        observed-value summaries, and per-operation latency statistics
        (plus the cross-operation aggregate under ``"*"``).
        """
        latencies = {
            op: self.stats(op).as_dict() for op in self.operations()
        }
        latencies["*"] = self.stats().as_dict()
        return {
            "window": {
                "warmup_ms": self._warmup,
                "window_ms": self._window,
            },
            "counters": self.counters(),
            "observations": {
                name: {
                    "count": len(values),
                    "max": max(values) if values else None,
                }
                for name, values in sorted(self._values.items())
            },
            "latency_ms": latencies,
        }
