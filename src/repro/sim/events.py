"""The discrete-event engine: a clock and a pending-event heap.

Time is measured in milliseconds (float) to match the latency numbers
the paper reports.  Events are callbacks scheduled at absolute times;
ties break by insertion order, keeping runs fully deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """A deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[_Event] = []

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[[], None]) -> _Event:
        """Run ``fn`` after ``delay`` ms; returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        event = _Event(self._now + delay, self._seq, fn)
        heapq.heappush(self._heap, event)
        return event

    def at(self, time: float, fn: Callable[[], None]) -> _Event:
        """Run ``fn`` at absolute simulated time ``time``."""
        return self.schedule(max(0.0, time - self._now), fn)

    @staticmethod
    def cancel(event: _Event) -> None:
        event.cancelled = True

    def step(self) -> bool:
        """Process one event; False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.fn()
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Process events until the queue drains or ``until`` (ms)."""
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                self._now = until
                return
            self.step()
        if until is not None and until > self._now:
            self._now = until

    @property
    def pending(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)
