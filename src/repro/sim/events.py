"""The discrete-event engine: a clock and a pending-event heap.

Time is measured in milliseconds (float) to match the latency numbers
the paper reports.  Events are callbacks scheduled at absolute times;
ties break by insertion order, keeping runs fully deterministic.

Every simulated message, service completion and timer passes through
this heap, so events are plain ``(time, seq, fn, args)`` tuples: heapq
compares them in C (the unique ``seq`` breaks ties before the
incomparable callback is ever reached), and callers pass
``schedule(delay, fn, *args)`` instead of allocating a closure per
message.  Cancellation is tracked in a side set of sequence numbers so
the common no-cancellation run pays nothing for it.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable

from repro.errors import SimulationError

# (time, seq, fn, args) -- `seq` is unique per simulator, so tuple
# comparison never falls through to the callback.
Event = tuple[float, int, Callable[..., None], tuple]


class Simulator:
    """A deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[Event] = []
        self._cancelled: set[int] = set()

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def schedule(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``fn(*args)`` after ``delay`` ms; returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq = seq = self._seq + 1
        event = (self._now + delay, seq, fn, args)
        heappush(self._heap, event)
        return event

    def at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        now = self._now
        self._seq = seq = self._seq + 1
        event = (time if time > now else now, seq, fn, args)
        heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        self._cancelled.add(event[1])

    def step(self) -> bool:
        """Process one event; False when the queue is empty."""
        heap = self._heap
        cancelled = self._cancelled
        while heap:
            time_, seq, fn, args = heappop(heap)
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self._now = time_
            fn(*args)
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Process events until the queue drains or ``until`` (ms)."""
        heap = self._heap
        pop = heappop
        cancelled = self._cancelled
        if until is None:
            while heap:
                time_, seq, fn, args = pop(heap)
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)
                    continue
                self._now = time_
                fn(*args)
            return
        while heap:
            if heap[0][0] > until:
                self._now = until
                return
            time_, seq, fn, args = pop(heap)
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self._now = time_
            fn(*args)
        if until > self._now:
            self._now = until

    @property
    def pending(self) -> int:
        cancelled = self._cancelled
        if not cancelled:
            return len(self._heap)
        return sum(1 for event in self._heap if event[1] not in cancelled)
