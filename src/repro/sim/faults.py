"""Deterministic fault injection for the simulated network.

The paper's claim -- IPA-modified applications preserve their
invariants on *any* causally consistent store -- is only interesting
when the store actually misbehaves.  This module supplies the
misbehaviour: a :class:`FaultPlan` describes message drops,
duplication, reordering (a per-message FIFO override), scheduled
bidirectional partitions and replica crash/restart windows; a
:class:`FaultInjector` executes the plan with a dedicated seeded RNG so
a chaos run is bit-for-bit reproducible given the same seed.

Faults apply to *inter-region* messages only: a client and its
co-located server share a rack, and modelling their link as lossy
would only test the client retry loop, not replication.  Crash windows
are interpreted by the cluster (a crashed replica loses its volatile
state and recovers by replaying its durable commit log, see
:mod:`repro.store.antientropy`); the injector merely answers
"is this region down at time t".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class PartitionWindow:
    """A bidirectional partition between two region groups.

    Messages between ``side_a`` and ``side_b`` are dropped while
    ``start_ms <= now < end_ms``; traffic within a side is unaffected.
    """

    start_ms: float
    end_ms: float
    side_a: tuple[str, ...]
    side_b: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise SimulationError(
                f"partition heals before it starts: {self}"
            )
        if set(self.side_a) & set(self.side_b):
            raise SimulationError(f"region on both sides: {self}")

    def blocks(self, source: str, target: str, now: float) -> bool:
        if not (self.start_ms <= now < self.end_ms):
            return False
        return (source in self.side_a and target in self.side_b) or (
            source in self.side_b and target in self.side_a
        )


@dataclass(frozen=True)
class CrashWindow:
    """One replica is down (volatile state lost) during a window."""

    region: str
    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise SimulationError(f"crash recovers before it starts: {self}")

    def covers(self, region: str, now: float) -> bool:
        return region == self.region and self.start_ms <= now < self.end_ms


@dataclass(frozen=True)
class FaultPlan:
    """Everything that may go wrong during one run, seeded.

    Probabilities are per inter-region message: ``drop`` loses it,
    ``duplicate`` schedules a second delayed copy, ``reorder`` exempts
    it from the per-edge FIFO clamp and adds up to
    ``reorder_delay_ms`` of extra latency so it can overtake or lag its
    neighbours.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay_ms: float = 80.0
    duplicate_delay_ms: float = 40.0
    partitions: tuple[PartitionWindow, ...] = ()
    crashes: tuple[CrashWindow, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise SimulationError(f"{name} probability {p} not in [0, 1]")

    # -- JSON round-trip (repro files, ``repro check --replay``) -------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "drop": self.drop,
            "duplicate": self.duplicate,
            "reorder": self.reorder,
            "reorder_delay_ms": self.reorder_delay_ms,
            "duplicate_delay_ms": self.duplicate_delay_ms,
            "partitions": [
                {
                    "start_ms": w.start_ms,
                    "end_ms": w.end_ms,
                    "side_a": list(w.side_a),
                    "side_b": list(w.side_b),
                }
                for w in self.partitions
            ],
            "crashes": [
                {
                    "region": w.region,
                    "start_ms": w.start_ms,
                    "end_ms": w.end_ms,
                }
                for w in self.crashes
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> FaultPlan:
        return cls(
            seed=data.get("seed", 0),
            drop=data.get("drop", 0.0),
            duplicate=data.get("duplicate", 0.0),
            reorder=data.get("reorder", 0.0),
            reorder_delay_ms=data.get("reorder_delay_ms", 80.0),
            duplicate_delay_ms=data.get("duplicate_delay_ms", 40.0),
            partitions=tuple(
                PartitionWindow(
                    w["start_ms"],
                    w["end_ms"],
                    tuple(w["side_a"]),
                    tuple(w["side_b"]),
                )
                for w in data.get("partitions", ())
            ),
            crashes=tuple(
                CrashWindow(w["region"], w["start_ms"], w["end_ms"])
                for w in data.get("crashes", ())
            ),
        )


@dataclass(frozen=True)
class Delivery:
    """The injector's verdict for one message.

    ``copies`` holds one ``(extra_delay_ms, fifo)`` entry per scheduled
    delivery (empty when dropped); ``fifo=False`` means the copy skips
    the per-edge FIFO clamp (reordering / duplicate copies).
    """

    copies: tuple[tuple[float, bool], ...]
    partitioned: bool = False

    @property
    def dropped(self) -> bool:
        return not self.copies


#: The verdict for a message on a fault-free network.
CLEAN = Delivery(copies=((0.0, True),))


class FaultInjector:
    """Executes a :class:`FaultPlan` with its own deterministic RNG.

    One RNG draw sequence per injector: given the same plan (seed
    included) and the same sequence of ``on_send`` calls -- which the
    deterministic simulator guarantees -- every verdict is identical
    across runs and Python versions.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.partition_drops = 0
        # Fast-path flags: a plan with no partitions / no message-level
        # probabilities answers ``on_send`` without scanning windows or
        # touching the RNG.  Both are plan constants, so skipping draws
        # keeps the verdict stream deterministic for a given plan.
        self._has_partitions = bool(plan.partitions)
        self._passive = not (plan.drop or plan.duplicate or plan.reorder)

    # -- queries the cluster/network make ------------------------------------

    def partitioned(self, source: str, target: str, now: float) -> bool:
        return any(
            w.blocks(source, target, now) for w in self.plan.partitions
        )

    def crashed(self, region: str, now: float) -> bool:
        return any(w.covers(region, now) for w in self.plan.crashes)

    # -- the per-message verdict ---------------------------------------------

    def on_send(self, source: str, target: str, now: float) -> Delivery:
        """Decide the fate of one inter-region message at send time."""
        if source == target:
            return CLEAN
        if self._has_partitions and self.partitioned(source, target, now):
            self.partition_drops += 1
            self.dropped += 1
            return Delivery(copies=(), partitioned=True)
        if self._passive:
            return CLEAN
        rng = self._rng
        # Draw every fault in a fixed order so the RNG stream stays
        # aligned across runs regardless of which faults fire.
        drop = rng.random() < self.plan.drop
        duplicate = rng.random() < self.plan.duplicate
        reorder = rng.random() < self.plan.reorder
        reorder_extra = rng.uniform(0.0, self.plan.reorder_delay_ms)
        duplicate_extra = rng.uniform(0.0, self.plan.duplicate_delay_ms)
        if drop:
            self.dropped += 1
            return Delivery(copies=())
        copies: list[tuple[float, bool]] = []
        if reorder:
            self.reordered += 1
            copies.append((reorder_extra, False))
        else:
            copies.append((0.0, True))
        if duplicate:
            self.duplicated += 1
            copies.append((duplicate_extra, False))
        return Delivery(copies=tuple(copies))
