"""Workload generation: operation mixes and skewed key choice.

The Tournament benchmark uses a 35%-write mix (§5.2.2); the Ticket
benchmark raises contention by skewing event popularity.  Both shapes
are expressed here: a weighted :class:`OperationMix` and a
:class:`ZipfGenerator` over key indices, all driven by seeded RNGs for
reproducible runs.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Sequence


class ZipfGenerator:
    """Zipf-distributed indices in ``[0, n)``.

    ``theta=0`` degenerates to uniform; larger values skew toward low
    indices (hot keys).  Sampling uses the precomputed CDF, O(log n).
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 11) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self._rng = random.Random(seed)
        weights = [1.0 / ((i + 1) ** theta) for i in range(n)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cdf = cumulative

    def sample(self) -> int:
        return bisect.bisect_left(self._cdf, self._rng.random())


@dataclass
class OperationMix:
    """A weighted choice over operation names."""

    weights: dict[str, float]
    seed: int = 13

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("empty operation mix")
        self._rng = random.Random(self.seed)
        self._names = list(self.weights)
        total = sum(self.weights.values())
        cumulative = []
        acc = 0.0
        for name in self._names:
            acc += self.weights[name] / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cdf = cumulative

    def sample(self) -> str:
        return self._names[bisect.bisect_left(self._cdf, self._rng.random())]

    def write_fraction(self, write_ops: Sequence[str]) -> float:
        """The fraction of the mix that falls on the given operations."""
        total = sum(self.weights.values())
        return sum(self.weights.get(op, 0.0) for op in write_ops) / total
