"""Closed-loop client driver.

Reproduces the paper's load model: a number of client threads per
region, each issuing one operation at a time against its co-located
server, with optional think time.  Throughput scales with the client
count until the servers saturate -- which is how the peak-throughput
curves (Figures 4 and 7) are produced.

The application under test is an *issuer* callable: it receives the
client descriptor and a completion callback and performs one operation
against the simulated cluster, invoking the callback (with the
operation name) when the response reaches the client.

Clients are resilient to server faults: when a region is unavailable
(crashed or failed over) the submit raises and the client retries
after a short backoff, and an optional per-operation timeout re-issues
operations whose response never arrives (dropped request or reply,
server crash mid-flight).  Retries and timeouts surface as the
``client.retries`` / ``client.timeouts`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import StoreError
from repro.sim.events import Simulator
from repro.sim.metrics import LatencyStats, MetricsCollector


@dataclass(frozen=True)
class Client:
    """One closed-loop client thread."""

    client_id: int
    region: str


Issuer = Callable[[Client, Callable[[str], None]], None]

#: Optional per-completion hook: ``observer(client, op_name)`` runs at
#: each operation completion (after metrics are recorded).  The
#: checker wires its session oracle through this.
Observer = Callable[[Client, str], None]


@dataclass
class RunResult:
    """Outcome of one closed-loop run."""

    metrics: MetricsCollector
    window_ms: float
    total_clients: int

    @property
    def throughput(self) -> float:
        """Committed operations per second in the measurement window."""
        return self.metrics.throughput(self.window_ms)

    def stats(self, op: str | None = None) -> LatencyStats:
        return self.metrics.stats(op)


class ClientPool:
    """Spawns clients and keeps each one operation in flight."""

    def __init__(
        self,
        sim: Simulator,
        issue: Issuer,
        metrics: MetricsCollector,
        think_ms: float = 0.0,
        retry_ms: float = 50.0,
        timeout_ms: float | None = None,
        observer: Observer | None = None,
    ) -> None:
        self._sim = sim
        self._issue = issue
        self._metrics = metrics
        self._think = think_ms
        self._retry = retry_ms
        self._timeout = timeout_ms
        self._observer = observer
        self._stopped = False
        self._next_id = 0
        # Per-client attempt tokens: a completion or timeout is only
        # honoured if it belongs to the client's *current* attempt, so
        # a response that straggles in after a timeout is ignored.
        self._attempt: dict[int, int] = {}

    def spawn(self, region: str, count: int) -> None:
        for _ in range(count):
            client = Client(self._next_id, region)
            self._next_id += 1
            # Stagger starts so clients do not issue in lock-step.
            offset = (client.client_id % 17) * 0.37
            self._sim.schedule(offset, self._loop, client)

    def stop(self) -> None:
        self._stopped = True

    @property
    def total_clients(self) -> int:
        return self._next_id

    def _loop(self, client: Client) -> None:
        if self._stopped:
            return
        if self._timeout is None:
            # Fast path: without operation timeouts there is no attempt
            # token to race against, so one closure per operation is
            # enough.  Hot attributes are bound once per op here, not
            # re-read per completion.
            sim = self._sim
            started = sim.now
            record_latency = self._metrics.record_latency
            observer = self._observer

            def complete(op_name: str) -> None:
                record_latency(sim.now, op_name, sim.now - started)
                if observer is not None:
                    observer(client, op_name)
                sim.schedule(self._think, self._loop, client)

            try:
                self._issue(client, complete)
            except StoreError:
                # The client's region is unavailable (crash/partition):
                # back off and retry until it comes back.
                self._metrics.increment(sim.now, "client.retries")
                sim.schedule(self._retry, self._loop, client)
            return
        started = self._sim.now
        attempt = self._attempt.get(client.client_id, 0) + 1
        self._attempt[client.client_id] = attempt

        def current() -> bool:
            return self._attempt.get(client.client_id) == attempt

        def complete(op_name: str) -> None:
            if not current():
                return  # timed out earlier; a retry owns the loop now
            self._metrics.record_latency(
                self._sim.now, op_name, self._sim.now - started
            )
            if self._observer is not None:
                self._observer(client, op_name)
            self._sim.schedule(self._think, self._loop, client)

        def timed_out() -> None:
            if not current() or self._stopped:
                return
            self._metrics.increment(self._sim.now, "client.timeouts")
            self._loop(client)

        try:
            self._issue(client, complete)
        except StoreError:
            # The client's region is unavailable (crash/partition):
            # back off and retry until it comes back.
            self._metrics.increment(self._sim.now, "client.retries")
            self._sim.schedule(self._retry, self._loop, client)
            return
        self._sim.schedule(self._timeout, timed_out)


def run_closed_loop(
    sim: Simulator,
    issue: Issuer,
    clients_per_region: dict[str, int],
    duration_ms: float = 10_000.0,
    warmup_ms: float = 1_000.0,
    think_ms: float = 0.0,
    metrics: MetricsCollector | None = None,
    retry_ms: float = 50.0,
    timeout_ms: float | None = None,
    observer: Observer | None = None,
) -> RunResult:
    """Run a closed-loop experiment and return its metrics.

    ``duration_ms`` is the measurement window; the run lasts
    ``warmup_ms + duration_ms`` of simulated time.  ``timeout_ms``
    (off by default) re-issues operations whose response never arrives
    -- required when running over a fault plan that drops messages.
    """
    # The collector windows are absolute sim times; anchor them at the
    # current clock so experiments can run after a setup phase.
    metrics = metrics or MetricsCollector(
        warmup_ms=sim.now + warmup_ms, window_ms=duration_ms
    )
    pool = ClientPool(
        sim,
        issue,
        metrics,
        think_ms=think_ms,
        retry_ms=retry_ms,
        timeout_ms=timeout_ms,
        observer=observer,
    )
    for region, count in clients_per_region.items():
        pool.spawn(region, count)
    end = sim.now + warmup_ms + duration_ms
    sim.run(until=end)
    pool.stop()
    # Drain in-flight work so the next experiment starts clean.
    sim.run(until=end + 1_000.0)
    return RunResult(
        metrics=metrics,
        window_ms=duration_ms,
        total_clients=pool.total_clients,
    )
