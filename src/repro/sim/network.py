"""Message-passing network over the simulated clock.

Messages between regions take one jittered one-way latency; delivery
order between a pair of endpoints is FIFO (a delivery is never
scheduled before one already in flight on the same edge), which the
causal-delivery layer of the store relies on for per-origin ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.events import Simulator
from repro.sim.latency import GeoLatencyModel


class Network:
    """Delivers payloads between named regions with geo latency."""

    def __init__(self, sim: Simulator, latency: GeoLatencyModel) -> None:
        self._sim = sim
        self._latency = latency
        self._last_delivery: dict[tuple[str, str], float] = {}
        self.messages_sent = 0

    @property
    def latency_model(self) -> GeoLatencyModel:
        return self._latency

    def send(
        self,
        source: str,
        target: str,
        payload: Any,
        deliver: Callable[[Any], None],
    ) -> None:
        """Deliver ``payload`` to ``deliver`` after one-way latency.

        FIFO per (source, target) edge: delivery time is clamped to not
        precede earlier messages on the same edge.
        """
        self.messages_sent += 1
        delay = self._latency.one_way(source, target)
        arrival = self._sim.now + delay
        edge = (source, target)
        previous = self._last_delivery.get(edge, 0.0)
        arrival = max(arrival, previous)
        self._last_delivery[edge] = arrival
        self._sim.at(arrival, lambda: deliver(payload))

    def rtt(self, source: str, target: str) -> float:
        """Mean round-trip time (used by latency accounting)."""
        return self._latency.rtt_between(source, target)
