"""Message-passing network over the simulated clock.

Messages between regions take one jittered one-way latency; delivery
order between a pair of endpoints is FIFO (a delivery is never
scheduled before one already in flight on the same edge), which the
causal-delivery layer of the store relies on for per-origin ordering.

Two properties matter for reproducible chaos runs:

- **Stable tie-break.**  Every message carries a monotonically
  increasing send sequence number, and deliveries that land at the
  same simulated instant fire in send order: each ``send`` schedules
  its deliveries immediately, and the simulator breaks equal-time ties
  by insertion order.  No ordering ever depends on hash iteration or
  other cross-version nondeterminism.
- **Fault injection.**  When constructed with a
  :class:`~repro.sim.faults.FaultInjector`, every inter-region message
  first receives a verdict: dropped (lossy link or partition),
  duplicated (an extra delayed copy), or reordered (the copy skips the
  FIFO clamp and takes extra latency, so it can overtake neighbours).
  Reordered and duplicate copies do not advance the FIFO high-water
  mark -- a straggler delays only itself.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.events import Simulator
from repro.sim.faults import CLEAN, FaultInjector
from repro.sim.latency import GeoLatencyModel


class Network:
    """Delivers payloads between named regions with geo latency."""

    def __init__(
        self,
        sim: Simulator,
        latency: GeoLatencyModel,
        injector: FaultInjector | None = None,
    ) -> None:
        self._sim = sim
        self._latency = latency
        self._injector = injector
        self._last_delivery: dict[tuple[str, str], float] = {}
        self._send_seq = 0
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0

    @property
    def latency_model(self) -> GeoLatencyModel:
        return self._latency

    @property
    def injector(self) -> FaultInjector | None:
        return self._injector

    def send(
        self,
        source: str,
        target: str,
        payload: Any,
        deliver: Callable[[Any], None],
    ) -> None:
        """Deliver ``payload`` to ``deliver`` after one-way latency.

        FIFO per (source, target) edge: delivery time is clamped to not
        precede earlier messages on the same edge -- unless the fault
        injector marks this message as reordered.
        """
        self.messages_sent += 1
        self._send_seq += 1
        base = self._latency.one_way(source, target)
        if self._injector is None:
            verdict = CLEAN
        else:
            verdict = self._injector.on_send(source, target, self._sim.now)
        if verdict is CLEAN:
            # Fault-free fast path: one FIFO copy, no counter updates,
            # delivery scheduling inlined.
            sim = self._sim
            arrival = sim.now + base
            edge = (source, target)
            last_delivery = self._last_delivery
            last = last_delivery.get(edge, 0.0)
            if last > arrival:
                arrival = last
            last_delivery[edge] = arrival
            self.messages_delivered += 1
            sim.at(arrival, deliver, payload)
            return
        if verdict.dropped:
            self.messages_dropped += 1
            return
        self.messages_duplicated += max(0, len(verdict.copies) - 1)
        if verdict.copies and not verdict.copies[0][1]:
            self.messages_reordered += 1
        for extra, fifo in verdict.copies:
            self._schedule_delivery(
                source, target, base + extra, fifo, payload, deliver
            )

    def _schedule_delivery(
        self,
        source: str,
        target: str,
        delay: float,
        fifo: bool,
        payload: Any,
        deliver: Callable[[Any], None],
    ) -> None:
        arrival = self._sim.now + delay
        if fifo:
            edge = (source, target)
            last = self._last_delivery.get(edge, 0.0)
            if last > arrival:
                arrival = last
            self._last_delivery[edge] = arrival
        # Scheduled deliveries always fire (the simulator never cancels
        # them), so the delivered counter is bumped here rather than
        # paying an extra callback frame per message.
        self.messages_delivered += 1
        self._sim.at(arrival, deliver, payload)

    def rtt(self, source: str, target: str) -> float:
        """Mean round-trip time (used by latency accounting)."""
        return self._latency.rtt_between(source, target)
