"""Geo latency model matching the paper's deployment (§5.2.1).

Three regions with mean round-trip times of ~80 ms between US-EAST and
each of the others and ~160 ms between US-WEST and EU-WEST.  One-way
latency is half the RTT, with configurable multiplicative jitter drawn
from a seeded RNG so runs are reproducible.  Clients are co-located
with their region's server (sub-millisecond RTT).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SimulationError

US_EAST = "us-east"
US_WEST = "us-west"
EU_WEST = "eu-west"

REGIONS = (US_EAST, US_WEST, EU_WEST)

#: Mean round-trip times in milliseconds, as reported in the paper.
DEFAULT_RTT = {
    frozenset((US_EAST, US_WEST)): 80.0,
    frozenset((US_EAST, EU_WEST)): 80.0,
    frozenset((US_WEST, EU_WEST)): 160.0,
}

#: RTT between a client and its co-located server.
LOCAL_RTT = 0.6


@dataclass
class GeoLatencyModel:
    """One-way latency samples over the 3-region topology."""

    rtt: dict[frozenset, float] | None = None
    jitter: float = 0.05
    seed: int = 7

    def __post_init__(self) -> None:
        if self.rtt is None:
            self.rtt = dict(DEFAULT_RTT)
        self._rng = random.Random(self.seed)

    def rtt_between(self, a: str, b: str) -> float:
        """Mean round-trip time between two regions."""
        if a == b:
            return LOCAL_RTT
        key = frozenset((a, b))
        try:
            return self.rtt[key]
        except KeyError:
            raise SimulationError(f"no RTT configured for {a} <-> {b}") from None

    def one_way(self, a: str, b: str) -> float:
        """A jittered one-way latency sample."""
        mean = self.rtt_between(a, b) / 2.0
        if self.jitter <= 0:
            return mean
        factor = max(0.0, self._rng.gauss(1.0, self.jitter))
        return mean * factor
