"""Geo latency model matching the paper's deployment (§5.2.1).

Three regions with mean round-trip times of ~80 ms between US-EAST and
each of the others and ~160 ms between US-WEST and EU-WEST.  One-way
latency is half the RTT, with configurable multiplicative jitter drawn
from a seeded RNG so runs are reproducible.  Clients are co-located
with their region's server (sub-millisecond RTT).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SimulationError

US_EAST = "us-east"
US_WEST = "us-west"
EU_WEST = "eu-west"

REGIONS = (US_EAST, US_WEST, EU_WEST)

#: Mean round-trip times in milliseconds, as reported in the paper.
DEFAULT_RTT = {
    frozenset((US_EAST, US_WEST)): 80.0,
    frozenset((US_EAST, EU_WEST)): 80.0,
    frozenset((US_WEST, EU_WEST)): 160.0,
}

#: RTT between a client and its co-located server.
LOCAL_RTT = 0.6


def synthetic_topology(
    n_regions: int,
    *,
    base_rtt_ms: float = 110.0,
    spread_ms: float = 80.0,
    seed: int = 11,
) -> tuple[tuple[str, ...], dict[frozenset, float]]:
    """A deterministic ``n``-region topology extending the paper's three.

    The first three regions keep their measured RTTs; additional
    regions are named ``region-<i>`` and every new pair gets a seeded
    RTT in ``base_rtt_ms +/- spread_ms/2``.  Used by the scale
    benchmarks to run the tournament at 5 and 8 regions.
    """
    if n_regions < 1:
        raise SimulationError(f"need at least one region, got {n_regions}")
    names = list(REGIONS[:n_regions])
    for index in range(len(names), n_regions):
        names.append(f"region-{index}")
    rng = random.Random(seed)
    rtt: dict[frozenset, float] = {}
    for i in range(n_regions):
        for j in range(i + 1, n_regions):
            key = frozenset((names[i], names[j]))
            known = DEFAULT_RTT.get(key)
            if known is not None:
                rtt[key] = known
            else:
                rtt[key] = base_rtt_ms + rng.uniform(
                    -spread_ms / 2.0, spread_ms / 2.0
                )
    return tuple(names), rtt


@dataclass
class GeoLatencyModel:
    """One-way latency samples over the 3-region topology."""

    rtt: dict[frozenset, float] | None = None
    jitter: float = 0.05
    seed: int = 7

    def __post_init__(self) -> None:
        if self.rtt is None:
            self.rtt = dict(DEFAULT_RTT)
        self._rng = random.Random(self.seed)
        # (a, b) -> one-way mean, filled on first use.  ``one_way`` runs
        # once per simulated message, so avoid rebuilding a frozenset
        # key and halving the RTT every call.
        self._one_way_mean: dict[tuple[str, str], float] = {}

    def rtt_between(self, a: str, b: str) -> float:
        """Mean round-trip time between two regions."""
        if a == b:
            return LOCAL_RTT
        key = frozenset((a, b))
        try:
            return self.rtt[key]
        except KeyError:
            raise SimulationError(f"no RTT configured for {a} <-> {b}") from None

    def one_way(self, a: str, b: str) -> float:
        """A jittered one-way latency sample."""
        mean = self._one_way_mean.get((a, b))
        if mean is None:
            mean = self.rtt_between(a, b) / 2.0
            self._one_way_mean[(a, b)] = mean
        if self.jitter <= 0:
            return mean
        factor = max(0.0, self._rng.gauss(1.0, self.jitter))
        return mean * factor
