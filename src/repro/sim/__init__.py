"""Discrete-event simulation substrate.

The paper evaluates on a 3-datacenter EC2 deployment; this package
provides the equivalent simulated testbed: an event-driven clock
(:mod:`repro.sim.events`), a geo latency model with the paper's
US-EAST/US-WEST/EU-WEST round-trip times (:mod:`repro.sim.latency`), a
message-passing network (:mod:`repro.sim.network`), workload
generators (:mod:`repro.sim.workload`), latency/throughput metrics
(:mod:`repro.sim.metrics`) and a closed-loop client driver
(:mod:`repro.sim.runner`).
"""

from repro.sim.events import Simulator
from repro.sim.faults import (
    CrashWindow,
    FaultInjector,
    FaultPlan,
    PartitionWindow,
)
from repro.sim.latency import GeoLatencyModel, REGIONS
from repro.sim.metrics import LatencyStats, MetricsCollector, StaleWindow
from repro.sim.network import Network
from repro.sim.runner import ClientPool, RunResult, run_closed_loop
from repro.sim.workload import OperationMix, ZipfGenerator

__all__ = [
    "ClientPool",
    "CrashWindow",
    "FaultInjector",
    "FaultPlan",
    "GeoLatencyModel",
    "LatencyStats",
    "MetricsCollector",
    "Network",
    "OperationMix",
    "PartitionWindow",
    "REGIONS",
    "RunResult",
    "Simulator",
    "StaleWindow",
    "ZipfGenerator",
    "run_closed_loop",
]
