"""Command-line interface: ``python -m repro <command>``.

The executable counterpart of the paper's IPA tool:

- ``analyze SPECFILE``  -- run the full IPA analysis on a spec file and
  print the report (conflicts, chosen repairs, compensations, patch);
- ``conflicts SPECFILE`` -- only detect and print conflicting pairs
  with their Figure 2-style counterexamples;
- ``classify SPECFILE`` -- print the Table 1 classification of the
  specification's invariants;
- ``simulate`` -- run one closed-loop Tournament experiment on the
  simulated geo-replicated store and print throughput/latency (the
  quickest way to see the effect of ``--batch-ms`` or client load);
- ``trace SPECFILE`` -- run the IPA analysis plus a short simulation
  with tracing on and write one Chrome-trace JSON covering all three
  layers (open it at https://ui.perfetto.dev).

``analyze`` and ``simulate`` accept ``--trace`` (print a span summary
table) and ``--trace-out FILE`` (write the Chrome trace); ``simulate``
then also runs the IPA analysis of the application first, so the trace
carries analysis, solver and store spans end to end.
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.analysis import ConflictChecker, run_ipa
from repro.analysis.classification import classify_spec
from repro.analysis.report import render_result, render_witness
from repro.errors import ReproError
from repro.specfile import load_specfile


def _tracing_requested(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "trace", False) or getattr(args, "trace_out", None)
    )


def _start_tracing(args: argparse.Namespace) -> None:
    if _tracing_requested(args):
        obs.configure(enabled=True)


def _finish_tracing(args: argparse.Namespace) -> None:
    """Export and/or summarise the collected trace, then stop tracing."""
    if not _tracing_requested(args):
        return
    spans = obs.TRACER.spans()
    out = getattr(args, "trace_out", None)
    if out:
        obs.write_chrome_trace(spans, out)
        print(
            f"trace: {len(spans)} span(s) -> {out} "
            f"(load in https://ui.perfetto.dev)"
        )
    if getattr(args, "trace", False):
        print()
        print(obs.summarize(spans))
    obs.TRACER.disable()


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", action="store_true",
        help="collect spans and print a per-span summary table",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write the collected spans as Chrome trace-event JSON "
        "(Perfetto-loadable)",
    )


def _ms(value: float | None) -> str:
    """None-safe fixed-width millisecond figure."""
    return f"{value:6.2f}" if value is not None else "   n/a"


def _cmd_analyze(args: argparse.Namespace) -> int:
    spec = load_specfile(args.specfile)
    _start_tracing(args)
    result = run_ipa(
        spec,
        max_effects=args.max_effects,
        allow_rule_changes=not args.no_rule_changes,
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    print(render_result(result))
    _finish_tracing(args)
    return 0 if result.is_invariant_preserving else 1


def _cmd_conflicts(args: argparse.Namespace) -> int:
    spec = load_specfile(args.specfile)
    checker = ConflictChecker(spec)
    witnesses = checker.find_conflicts()
    if not witnesses:
        print("no conflicting pairs: the specification is I-Confluent")
        return 0
    for witness in witnesses:
        print(render_witness(witness))
        print()
    print(f"{len(witnesses)} conflicting pair(s)")
    return 1


def _cmd_classify(args: argparse.Namespace) -> int:
    spec = load_specfile(args.specfile)
    grouped = classify_spec(spec)
    for cls, invariants in sorted(grouped.items(), key=lambda kv: kv[0].value):
        verdict = (
            "I-Confluent"
            if cls.i_confluent
            else f"IPA: {cls.ipa_treatment}"
        )
        print(f"{cls.label} ({verdict})")
        for invariant in invariants:
            print(f"  - {invariant.describe()}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    # Imported here: the simulator stack is not needed by the
    # analysis-only commands.
    from repro.bench.configs import CONFIGS, build_tournament
    from repro.sim.runner import run_closed_loop

    config = next((c for c in CONFIGS if c.name == args.config), None)
    if config is None:
        names = ", ".join(c.name for c in CONFIGS)
        print(
            f"error: unknown config {args.config!r} (one of: {names})",
            file=sys.stderr,
        )
        return 2
    _start_tracing(args)
    if _tracing_requested(args):
        # Analysis provenance: a traced run documents the whole IPA
        # pipeline, so derive the application's repairs/compensations
        # first -- the trace then carries analysis, solver and store
        # spans end to end.
        from repro.apps.tournament import tournament_spec

        run_ipa(tournament_spec(), cache=False)
    sim, app, workload = build_tournament(
        config,
        seed=args.seed,
        n_regions=args.regions,
        batch_ms=args.batch_ms,
    )
    cluster = app.cluster
    clients = {region: args.clients for region in cluster.regions}
    with obs.TRACER.span(
        "sim.run", config=config.name, clients=args.clients
    ):
        result = run_closed_loop(
            sim,
            workload.issue,
            clients,
            duration_ms=args.duration_ms,
            warmup_ms=args.warmup_ms,
            think_ms=args.think_ms,
        )
        cluster.run_until_converged()
    stats = result.stats()
    print(
        f"{config.name}: {args.regions} regions x {args.clients} "
        f"clients, batch_ms={args.batch_ms:g}"
    )
    print(
        f"  throughput {result.throughput:8.1f} op/s   "
        f"latency mean {_ms(stats.mean)} ms  "
        f"p95 {_ms(stats.p95)} ms  p99 {_ms(stats.p99)} ms"
    )
    print(
        f"  {result.metrics.total_operations()} operations, "
        f"{cluster.replication_messages} replication messages"
    )
    _finish_tracing(args)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """One traced end-to-end run: IPA analysis + a short simulation."""
    from repro.bench.configs import CONFIGS, build_tournament
    from repro.sim.runner import run_closed_loop

    spec = load_specfile(args.specfile)
    obs.configure(enabled=True)
    result = run_ipa(spec, jobs=args.jobs, cache=False)
    print(
        f"analysis: {result.rounds} round(s), "
        f"{result.solver_queries} solver queries, "
        f"{len(result.applied)} repair(s), "
        f"{len(result.flagged)} flagged conflict(s)"
    )
    config = next(c for c in CONFIGS if c.name == "Causal")
    sim, app, workload = build_tournament(config, seed=args.seed)
    cluster = app.cluster
    clients = {region: args.clients for region in cluster.regions}
    with obs.TRACER.span("sim.run", config=config.name, clients=args.clients):
        run = run_closed_loop(
            sim,
            workload.issue,
            clients,
            duration_ms=args.duration_ms,
            warmup_ms=500.0,
        )
        cluster.run_until_converged()
    print(
        f"simulation: {run.metrics.total_operations()} operation(s) at "
        f"{run.throughput:.1f} op/s over {args.duration_ms:g} ms"
    )
    spans = obs.TRACER.spans()
    obs.write_chrome_trace(spans, args.trace_out)
    print(
        f"trace: {len(spans)} span(s) -> {args.trace_out} "
        f"(load in https://ui.perfetto.dev)"
    )
    print()
    print(obs.summarize(spans))
    obs.TRACER.disable()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IPA: make applications invariant-preserving "
        "under weak consistency",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze", help="run the full IPA analysis and print the patch"
    )
    analyze.add_argument("specfile")
    analyze.add_argument(
        "--max-effects", type=int, default=2,
        help="max extra effects per repair (default 2)",
    )
    analyze.add_argument(
        "--no-rule-changes", action="store_true",
        help="only repair under the declared convergence rules",
    )
    analyze.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the conflict scan (default 1; "
        "results are identical for any value)",
    )
    analyze.add_argument(
        "--no-cache", action="store_true",
        help="disable the solver-query cache",
    )
    analyze.add_argument(
        "--cache-dir", default=".ipa-cache", metavar="DIR",
        help="persistent solver-cache directory (default .ipa-cache)",
    )
    _add_trace_flags(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    conflicts = sub.add_parser(
        "conflicts", help="detect conflicting operation pairs"
    )
    conflicts.add_argument("specfile")
    conflicts.set_defaults(func=_cmd_conflicts)

    classify = sub.add_parser(
        "classify", help="classify invariants (Table 1 taxonomy)"
    )
    classify.add_argument("specfile")
    classify.set_defaults(func=_cmd_classify)

    simulate = sub.add_parser(
        "simulate",
        help="run one closed-loop Tournament simulation",
    )
    simulate.add_argument(
        "--config", default="Causal",
        help="system configuration: Strong, Indigo, IPA or Causal "
        "(default Causal)",
    )
    simulate.add_argument(
        "--regions", type=int, default=3,
        help="number of geo-replicated regions (default 3)",
    )
    simulate.add_argument(
        "--clients", type=int, default=32, metavar="N",
        help="closed-loop clients per region (default 32)",
    )
    simulate.add_argument(
        "--batch-ms", type=float, default=0.0, metavar="MS",
        help="replication coalescing window in simulated ms; 0 ships "
        "one message per commit record (default 0)",
    )
    simulate.add_argument(
        "--duration-ms", type=float, default=10_000.0, metavar="MS",
        help="measurement window in simulated ms (default 10000)",
    )
    simulate.add_argument(
        "--warmup-ms", type=float, default=1_000.0, metavar="MS",
        help="warm-up before the window (default 1000)",
    )
    simulate.add_argument(
        "--think-ms", type=float, default=100.0, metavar="MS",
        help="per-client think time between operations (default 100)",
    )
    simulate.add_argument(
        "--seed", type=int, default=23,
        help="workload seed (default 23)",
    )
    _add_trace_flags(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    trace = sub.add_parser(
        "trace",
        help="run analysis + a short simulation with tracing on and "
        "export a Chrome trace",
    )
    trace.add_argument("specfile")
    trace.add_argument(
        "--trace-out", metavar="FILE", default="trace.json",
        help="output Chrome trace-event JSON (default trace.json)",
    )
    trace.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the conflict scan (default 1); "
        "worker spans stitch into the same trace",
    )
    trace.add_argument(
        "--clients", type=int, default=8, metavar="N",
        help="closed-loop clients per region (default 8)",
    )
    trace.add_argument(
        "--duration-ms", type=float, default=2_000.0, metavar="MS",
        help="simulation measurement window (default 2000)",
    )
    trace.add_argument(
        "--seed", type=int, default=23,
        help="workload seed (default 23)",
    )
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
