"""Command-line interface: ``python -m repro <command>``.

The executable counterpart of the paper's IPA tool:

- ``analyze SPECFILE``  -- run the full IPA analysis on a spec file and
  print the report (conflicts, chosen repairs, compensations, patch);
- ``conflicts SPECFILE`` -- only detect and print conflicting pairs
  with their Figure 2-style counterexamples; with ``--ledger DIR`` it
  instead queries the durable *runtime* conflict ledger a live run
  left behind (violations, repairs, compensations, with lineage);
- ``classify SPECFILE`` -- print the Table 1 classification of the
  specification's invariants;
- ``simulate`` -- run one closed-loop Tournament experiment on the
  simulated geo-replicated store and print throughput/latency (the
  quickest way to see the effect of ``--batch-ms`` or client load);
  with ``--fail-on-violation`` the run is judged by the runtime
  oracles and the exit status is nonzero when one fires;
- ``check APP`` -- explore deterministic fault schedules against APP
  with the runtime oracles, shrink the first counterexample found,
  and optionally write a replayable repro file; ``check --replay
  FILE`` re-executes a repro file and verifies the same verdict;
- ``trace SPECFILE`` -- run the IPA analysis plus a short simulation
  with tracing on and write one Chrome-trace JSON covering all three
  layers (open it at https://ui.perfetto.dev);
- ``serve`` -- run one region's live replica server (TCP listeners,
  durable commit log, schedule-gated execution) against a recorded
  deployment; normally launched per region by ``load --subprocess``
  or the quickstart recipe in the README;
- ``load`` -- record a simulated trial, then execute it against a
  *live* 3-region cluster over real sockets with a chaos proxy on
  every link, and compare the final state digests byte-for-byte
  against the simulator's; ``--trace-dir DIR`` traces the whole fleet
  and stitches one Perfetto-loadable ``trace.json``;
- ``top`` -- poll a live fleet's metrics endpoints (replicas via the
  topology file, chaos proxy via its admin port) and render schedule
  progress, convergence lag, store counters and fault rates.

``analyze`` and ``simulate`` accept ``--trace`` (print a span summary
table) and ``--trace-out FILE`` (write the Chrome trace); ``simulate``
then also runs the IPA analysis of the application first, so the trace
carries analysis, solver and store spans end to end.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro import obs
from repro.analysis import ConflictChecker, run_ipa
from repro.analysis.classification import classify_spec
from repro.analysis.report import render_result, render_witness
from repro.errors import ReproError
from repro.specfile import load_specfile


def _tracing_requested(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "trace", False) or getattr(args, "trace_out", None)
    )


def _start_tracing(args: argparse.Namespace) -> None:
    if _tracing_requested(args):
        obs.configure(enabled=True)


def _finish_tracing(args: argparse.Namespace) -> None:
    """Export and/or summarise the collected trace, then stop tracing."""
    if not _tracing_requested(args):
        return
    spans = obs.TRACER.spans()
    out = getattr(args, "trace_out", None)
    if out:
        obs.write_chrome_trace(spans, out)
        print(
            f"trace: {len(spans)} span(s) -> {out} "
            f"(load in https://ui.perfetto.dev)"
        )
    if getattr(args, "trace", False):
        print()
        print(obs.summarize(spans))
    obs.TRACER.disable()


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", action="store_true",
        help="collect spans and print a per-span summary table",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write the collected spans as Chrome trace-event JSON "
        "(Perfetto-loadable)",
    )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=("memory", "file", "sqlite"), default=None,
        help="per-replica storage engine (default: REPRO_ENGINE env "
        "var, else memory)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="keyspace shards per replica (default: REPRO_SHARDS env "
        "var, else 1)",
    )


def _add_compile_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-compile", action="store_true",
        help="evaluate invariants with the pure interpreter instead "
        "of compiled closures (also: REPRO_NO_COMPILE=1)",
    )


def _apply_compile_flags(args: argparse.Namespace) -> None:
    if getattr(args, "no_compile", False):
        from repro.compile import set_compilation

        set_compilation(False)


def _ms(value: float | None) -> str:
    """None-safe fixed-width millisecond figure."""
    return f"{value:6.2f}" if value is not None else "   n/a"


def _cmd_analyze(args: argparse.Namespace) -> int:
    spec = load_specfile(args.specfile)
    _start_tracing(args)
    result = run_ipa(
        spec,
        max_effects=args.max_effects,
        allow_rule_changes=not args.no_rule_changes,
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    print(render_result(result))
    _finish_tracing(args)
    return 0 if result.is_invariant_preserving else 1


def _cmd_conflicts(args: argparse.Namespace) -> int:
    if args.ledger is not None:
        return _conflicts_ledger(args)
    if args.specfile is None:
        print(
            "error: SPECFILE is required unless --ledger is given",
            file=sys.stderr,
        )
        return 2
    spec = load_specfile(args.specfile)
    checker = ConflictChecker(spec)
    witnesses = checker.find_conflicts()
    if not witnesses:
        print("no conflicting pairs: the specification is I-Confluent")
        return 0
    for witness in witnesses:
        print(render_witness(witness))
        print()
    print(f"{len(witnesses)} conflicting pair(s)")
    return 1


def _conflicts_ledger(args: argparse.Namespace) -> int:
    """Query the durable runtime conflict ledgers under a data dir."""
    from repro.store.conflicts import open_ledgers

    ledgers = open_ledgers(args.ledger)
    if not ledgers:
        print(f"no conflict ledgers under {args.ledger}")
        return 0
    records = [
        record
        for ledger in ledgers.values()
        for record in ledger.records()
    ]
    records.sort(key=lambda r: (r.detected_at_ms, r.region, r.seq))
    if args.kind:
        records = [r for r in records if r.kind == args.kind]
    if args.json:
        print(
            json.dumps(
                {
                    "ledger": args.ledger,
                    "regions": sorted(ledgers),
                    "records": [r.to_dict() for r in records],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for record in records:
            print(record.describe())
        totals: dict[str, int] = {}
        for ledger in ledgers.values():
            for kind, count in ledger.counts().items():
                totals[kind] = totals.get(kind, 0) + count
        summary = ", ".join(
            f"{count} {kind}(s)" for kind, count in sorted(totals.items())
        )
        print(
            f"{len(records)} record(s) across {len(ledgers)} region "
            f"ledger(s){': ' + summary if summary else ''}"
        )
    for ledger in ledgers.values():
        ledger.close()
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    spec = load_specfile(args.specfile)
    grouped = classify_spec(spec)
    for cls, invariants in sorted(grouped.items(), key=lambda kv: kv[0].value):
        verdict = (
            "I-Confluent"
            if cls.i_confluent
            else f"IPA: {cls.ipa_treatment}"
        )
        print(f"{cls.label} ({verdict})")
        for invariant in invariants:
            print(f"  - {invariant.describe()}")
    return 0


def _simulate_violations(cluster, config, sessions, caps: dict) -> list:
    """Judge a finished ``simulate`` run with the runtime oracles."""
    from repro.check.apps import TournamentAdapter
    from repro.check.oracles import ConvergenceOracle, InvariantOracle

    adapter = TournamentAdapter()
    violations = list(ConvergenceOracle().check(cluster))
    digests = cluster.state_digest()
    # Converged replicas share digests: ground the invariants once per
    # distinct digest.
    representatives: dict[str, str] = {}
    for region in sorted(cluster.regions):
        representatives.setdefault(digests[region], region)
    oracle = InvariantOracle(adapter.spec(caps))
    for region in sorted(representatives.values()):
        interp = adapter.extract(
            cluster.replica(region), config.variant, caps
        )
        violations.extend(oracle.check(interp, region))
    violations.extend(sessions.check())
    return violations


def _cmd_simulate(args: argparse.Namespace) -> int:
    _apply_compile_flags(args)
    # Imported here: the simulator stack is not needed by the
    # analysis-only commands.
    from repro.bench.configs import CONFIGS, build_tournament
    from repro.sim.runner import run_closed_loop
    from repro.store.cluster import ConsistencyMode

    config = next((c for c in CONFIGS if c.name == args.config), None)
    if config is None:
        names = ", ".join(c.name for c in CONFIGS)
        print(
            f"error: unknown config {args.config!r} (one of: {names})",
            file=sys.stderr,
        )
        return 2
    _start_tracing(args)
    if _tracing_requested(args):
        # Analysis provenance: a traced run documents the whole IPA
        # pipeline, so derive the application's repairs/compensations
        # first -- the trace then carries analysis, solver and store
        # spans end to end.
        from repro.apps.tournament import tournament_spec

        run_ipa(tournament_spec(), cache=False)
    caps = {"capacity": 8, "n_players": 60, "n_tournaments": 12}
    sim, app, workload = build_tournament(
        config,
        n_players=caps["n_players"],
        n_tournaments=caps["n_tournaments"],
        capacity=caps["capacity"],
        seed=args.seed,
        n_regions=args.regions,
        batch_ms=args.batch_ms,
        engine=args.engine,
        shards=args.shards,
    )
    cluster = app.cluster
    observer = None
    sessions = None
    if args.fail_on_violation:
        from repro.check.oracles import SessionTracker

        sessions = SessionTracker()
        strong = config.mode is ConsistencyMode.STRONG

        def observer(client, op_name):
            serving = cluster.primary if strong else client.region
            sessions.observe(
                f"{client.region}#{client.client_id}",
                serving,
                dict(cluster.replica(serving).vv.entries),
            )

    clients = {region: args.clients for region in cluster.regions}
    with obs.TRACER.span(
        "sim.run", config=config.name, clients=args.clients
    ):
        result = run_closed_loop(
            sim,
            workload.issue,
            clients,
            duration_ms=args.duration_ms,
            warmup_ms=args.warmup_ms,
            think_ms=args.think_ms,
            observer=observer,
        )
        cluster.run_until_converged()
    stats = result.stats()
    print(
        f"{config.name}: {args.regions} regions x {args.clients} "
        f"clients, batch_ms={args.batch_ms:g}"
    )
    print(
        f"  throughput {result.throughput:8.1f} op/s   "
        f"latency mean {_ms(stats.mean)} ms  "
        f"p95 {_ms(stats.p95)} ms  p99 {_ms(stats.p99)} ms"
    )
    print(
        f"  {result.metrics.total_operations()} operations, "
        f"{cluster.replication_messages} replication messages"
    )
    exit_code = 0
    if args.fail_on_violation:
        violations = _simulate_violations(cluster, config, sessions, caps)
        if violations:
            print(f"  ORACLE VIOLATIONS ({len(violations)}):")
            for violation in violations[:10]:
                print(f"    - {violation.describe()}")
            if len(violations) > 10:
                print(f"    ... and {len(violations) - 10} more")
            exit_code = 1
        else:
            print("  oracles: clean (convergence, invariants, sessions)")
    _finish_tracing(args)
    return exit_code


def _check_replay(args: argparse.Namespace) -> int:
    """Re-execute a repro file and verify its recorded verdict."""
    from repro.check import load_repro, run_trial

    spec, expected = load_repro(args.replay)
    result = run_trial(spec)
    reproduced = result.verdict_keys == expected
    if args.json:
        print(
            json.dumps(
                {
                    "mode": "replay",
                    "app": spec.app,
                    "config": spec.config,
                    "seed": spec.seed,
                    "fingerprint": result.fingerprint,
                    "verdict": [list(k) for k in sorted(result.verdict_keys)],
                    "expected": [list(k) for k in sorted(expected)],
                    "reproduced": reproduced,
                    "violations": [v.to_dict() for v in result.violations],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0 if reproduced else 1
    print(result.summary())
    for violation in result.violations:
        print(f"  - {violation.describe()}")
    if reproduced:
        print("verdict reproduced")
        return 0
    print(
        "VERDICT MISMATCH: expected "
        f"{sorted(expected)}, got {sorted(result.verdict_keys)}"
    )
    return 1


def _format_ops(ops) -> list[str]:
    return [
        f"t={op.at_ms:7.1f} ms  {op.session:>12s}  "
        f"{op.op}({', '.join(op.args)})"
        for op in ops
    ]


def _cmd_check(args: argparse.Namespace) -> int:
    _apply_compile_flags(args)
    if args.replay:
        return _check_replay(args)
    if not args.app:
        print(
            "error: APP is required unless --replay is given",
            file=sys.stderr,
        )
        return 2
    from repro.check import explore, shrink, write_repro

    result = explore(
        args.app,
        args.config,
        trials=args.trials,
        budget_s=args.budget_s,
        seed=args.seed,
        n_ops=args.n_ops,
    )
    report: dict = {
        "mode": "explore",
        "app": result.app,
        "config": result.config,
        "seed": result.root_seed,
        "explored": result.explored,
        "violating": result.violating,
        "budget_exhausted": result.budget_exhausted,
        "trials": [
            {
                "index": t.index,
                "seed": t.seed,
                "plan_kind": t.plan_kind,
                "n_ops": t.n_ops,
                "n_violations": t.n_violations,
                "converged": t.converged,
            }
            for t in result.trials
        ],
    }
    if not args.json:
        for t in result.trials:
            status = (
                f"{t.n_violations} violation(s)" if t.n_violations else "ok"
            )
            print(
                f"  trial {t.index:2d} [{t.plan_kind:>15s}] "
                f"seed={t.seed} ops={t.n_ops} {status}"
            )
        print(result.summary())
    if result.failures:
        first = result.failures[0]
        report["failure"] = {
            "seed": first.spec.seed,
            "verdict": [list(k) for k in sorted(first.verdict_keys)],
            "fingerprint": first.fingerprint,
            "violations": [v.to_dict() for v in first.violations],
        }
        final_spec, final_result = first.spec, first
        if not args.no_shrink:
            shrunk = shrink(first.spec)
            final_spec, final_result = shrunk.shrunk, shrunk.result
            report["shrink"] = {
                "original_ops": shrunk.original_ops,
                "shrunk_ops": shrunk.shrunk_ops,
                "op_reduction": round(shrunk.op_reduction, 4),
                "regions": list(shrunk.shrunk.regions),
                "runs": shrunk.runs,
                "ops": _format_ops(shrunk.shrunk.ops),
            }
            if not args.json:
                print()
                print(f"shrink: {shrunk.summary()}")
                print("minimal counterexample:")
                for line in _format_ops(shrunk.shrunk.ops):
                    print(f"    {line}")
                for violation in final_result.violations:
                    print(f"  - {violation.describe()}")
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(
                args.out,
                f"{args.app}-{args.config}-seed{args.seed}.json",
            )
            write_repro(
                path,
                final_spec,
                final_result,
                meta={
                    "root_seed": args.seed,
                    "explored": result.explored,
                    "shrunk": not args.no_shrink,
                },
            )
            report["repro_file"] = path
            if not args.json:
                print(f"repro written to {path}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    violating = result.violating > 0
    if args.expect == "violation":
        return 0 if violating else 1
    if args.expect == "clean":
        return 0 if not violating else 1
    return 1 if violating else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """One traced end-to-end run: IPA analysis + a short simulation."""
    from repro.bench.configs import CONFIGS, build_tournament
    from repro.sim.runner import run_closed_loop

    spec = load_specfile(args.specfile)
    obs.configure(enabled=True)
    result = run_ipa(spec, jobs=args.jobs, cache=False)
    print(
        f"analysis: {result.rounds} round(s), "
        f"{result.solver_queries} solver queries, "
        f"{len(result.applied)} repair(s), "
        f"{len(result.flagged)} flagged conflict(s)"
    )
    config = next(c for c in CONFIGS if c.name == "Causal")
    sim, app, workload = build_tournament(config, seed=args.seed)
    cluster = app.cluster
    clients = {region: args.clients for region in cluster.regions}
    with obs.TRACER.span("sim.run", config=config.name, clients=args.clients):
        run = run_closed_loop(
            sim,
            workload.issue,
            clients,
            duration_ms=args.duration_ms,
            warmup_ms=500.0,
        )
        cluster.run_until_converged()
    print(
        f"simulation: {run.metrics.total_operations()} operation(s) at "
        f"{run.throughput:.1f} op/s over {args.duration_ms:g} ms"
    )
    spans = obs.TRACER.spans()
    obs.write_chrome_trace(spans, args.trace_out)
    print(
        f"trace: {len(spans)} span(s) -> {args.trace_out} "
        f"(load in https://ui.perfetto.dev)"
    )
    print()
    print(obs.summarize(spans))
    obs.TRACER.disable()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """One region's live replica server, until SIGTERM."""
    import asyncio
    import signal

    from repro.net.oracle import load_deployment
    from repro.net.server import ReplicaServer

    deployment = load_deployment(args.deployment)
    with open(args.topology, encoding="utf-8") as handle:
        topology = json.load(handle)
    if args.trace_dir:
        # Write-through spooling: every span hits the process's spool
        # file as it ends, so a SIGKILL mid-run loses at most the span
        # being written -- the stitcher tolerates the torn tail.
        obs.configure(
            enabled=True,
            spool_dir=args.trace_dir,
            spool=True,
            process=f"serve-{args.region}",
        )

    async def serve() -> int:
        server = ReplicaServer(
            deployment,
            topology,
            args.region,
            args.data_dir,
            fsync=args.fsync,
            engine=args.engine,
            shards=args.shards,
        )
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        print(
            f"serving {args.region}: client port "
            f"{topology['regions'][args.region]['client_port']}, peer port "
            f"{topology['regions'][args.region]['peer_port']}, "
            f"{len(server.engine.schedule)} schedule step(s), resuming at "
            f"{server.engine.position}",
            flush=True,
        )
        # Monitor loop rather than a bare stop.wait(): a permanent
        # engine failure (schedule divergence, unrecoverable storage
        # fault) must exit nonzero with a diagnosis, not serve a stuck
        # schedule until some harness deadline gives up on us.
        while not stop.is_set():
            try:
                await asyncio.wait_for(stop.wait(), timeout=0.5)
            except asyncio.TimeoutError:
                pass
            if server.engine_error is not None:
                print(
                    f"replica {args.region} failed permanently: "
                    f"{server.engine_error} (schedule position "
                    f"{server.engine.position}/"
                    f"{len(server.engine.schedule)})",
                    file=sys.stderr,
                    flush=True,
                )
                await server.stop()
                return 3
        await server.stop()
        return 0

    return asyncio.run(serve())


def _cmd_load(args: argparse.Namespace) -> int:
    """Record a trial, run it live under chaos, judge the digests."""
    import asyncio
    import tempfile

    from repro.check.explorer import build_trial
    from repro.net.harness import run_live
    from repro.net.oracle import record_trial

    spec = build_trial(
        args.app,
        args.config,
        args.seed,
        args.index,
        n_ops=args.n_ops,
    )
    if args.engine is not None or args.shards is not None:
        # Pin the backend into the spec so the recorded deployment
        # carries it to every live server (and to later replays).
        import dataclasses

        spec = dataclasses.replace(
            spec,
            engine=args.engine if args.engine is not None else spec.engine,
            shards=args.shards if args.shards is not None else spec.shards,
        )
    _, deployment = record_trial(spec)
    plan = deployment["trial"].get("plan", {})
    print(
        f"recorded {args.app}/{args.config} seed={spec.seed} "
        f"({len(deployment['ops'])} ops, "
        f"{len(plan.get('partitions', []))} partition window(s), "
        f"{len(plan.get('crashes', []))} crash window(s))"
    )
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-live-")
    report = asyncio.run(
        run_live(
            deployment,
            workdir,
            time_scale=args.time_scale,
            deadline_s=args.deadline_s,
            subprocess_servers=args.subprocess,
            fsync=args.fsync,
            trace_dir=args.trace_dir,
            supervise=not args.no_supervise,
            max_restart_attempts=args.max_restart_attempts,
            corrupt_regions=tuple(args.corrupt or ()),
            heartbeat_ms=args.heartbeat_ms,
            overload_limit=args.overload_limit,
            record_limit=args.record_limit,
            scrub_ms=args.scrub_ms,
        )
    )
    if report.trace:
        print(
            f"stitched trace -> {report.trace} "
            f"(load in https://ui.perfetto.dev)"
        )
    payload = report.bench(deployment, args.time_scale)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        mode = "subprocess" if args.subprocess else "in-process"
        print(
            f"live run ({mode} servers): {report.client.get('client.ops_acked', 0):.0f} "
            f"ops acked in {report.wall_s:.2f}s "
            f"({report.client.get('client.ops_per_s', 0.0):.1f} op/s), "
            f"{report.client.get('client.retries', 0):.0f} retries, "
            f"{report.crashes} crash window(s)"
        )
        for region in sorted(report.digests_sim):
            live = report.digests_live.get(region, "<missing>")
            verdict = "==" if live == report.digests_sim[region] else "!="
            print(f"  {region}: live {live[:16]} {verdict} sim "
                  f"{report.digests_sim[region][:16]}")
        supervisor = report.supervisor or {}
        if supervisor.get("restarts") or supervisor.get("corrupted_files"):
            mttr = supervisor.get("mttr_s")
            print(
                f"self-healing: {supervisor.get('restarts', 0)} supervised "
                f"restart(s), "
                f"{len(supervisor.get('corrupted_files', []))} corrupted "
                f"file(s) injected"
                + (f", MTTR {mttr:.2f}s" if mttr is not None else "")
            )
    if report.ok:
        print("digests byte-identical to the simulation")
        return 0
    print(f"LIVE RUN FAILED: {report.reason}", file=sys.stderr)
    for incident in (report.supervisor or {}).get("incidents", []):
        region = incident.get("region", "?")
        attempts = incident.get("attempts", 0)
        if incident.get("gave_up"):
            print(
                f"  supervisor: {region} permanently dead after "
                f"{attempts} restart attempt(s)",
                file=sys.stderr,
            )
        else:
            print(
                f"  supervisor: restarted {region} "
                f"(attempt(s)={attempts}, "
                f"detect {incident.get('detect_s', 0.0):.2f}s, "
                f"restart {incident.get('restart_s', 0.0):.2f}s)",
                file=sys.stderr,
            )
    return 1


async def _top_snapshot(topology: dict, timeout_s: float = 2.0) -> dict:
    """One poll of every live endpoint: replicas + proxy admin."""
    import asyncio

    from repro.net import wire
    from repro.net.client import fetch_metrics

    snapshot: dict = {"regions": {}, "proxy": None}
    for region, entry in sorted(topology.get("regions", {}).items()):
        try:
            snapshot["regions"][region] = await fetch_metrics(
                entry.get("host", "127.0.0.1"),
                entry["client_port"],
                timeout_s=timeout_s,
            )
        except (ReproError, ConnectionError, OSError, asyncio.TimeoutError):
            snapshot["regions"][region] = None
    admin = topology.get("proxy_admin")
    if admin:
        try:
            reader, writer = await asyncio.open_connection(
                admin.get("host", "127.0.0.1"), admin["port"]
            )
            try:
                await wire.write_frame(writer, {"type": "metrics"})
                frame = await asyncio.wait_for(
                    wire.read_frame(reader), timeout=timeout_s
                )
                if frame and frame.get("type") == "proxy_metrics_ack":
                    snapshot["proxy"] = frame.get("links", {})
            finally:
                writer.close()
        except (ReproError, ConnectionError, OSError, asyncio.TimeoutError):
            pass
    return snapshot


def _render_top(snapshot: dict) -> str:
    """The fleet table: one row per replica, one per chaos link."""
    header = (
        f"{'region':<12} {'schedule':>9} {'ops':>5} {'applied':>7} "
        f"{'dups':>5} {'sync t/o':>8} {'lag ms':>8} {'keys':>6} "
        f"{'syncs':>6} {'conflicts':>18}"
    )
    lines = [header, "-" * len(header)]
    for region, frame in sorted(snapshot["regions"].items()):
        if frame is None:
            lines.append(f"{region:<12} {'unreachable':>9}")
            continue
        stats = frame.get("stats", {})
        store = frame.get("store", {})
        gauges = frame.get("registry", {}).get("gauges", {})
        lag = gauges.get("store.convergence.lag_ms")
        conflicts = frame.get("conflicts", {})
        conflict_txt = (
            " ".join(
                f"{kind[0]}:{count}"
                for kind, count in sorted(conflicts.items())
            )
            or "-"
        )
        lines.append(
            f"{region:<12} "
            f"{frame.get('position', 0):>4}/{frame.get('steps', 0):<4} "
            f"{stats.get('net.ops.executed', 0):>5.0f} "
            f"{stats.get('net.records.applied', 0):>7.0f} "
            f"{stats.get('net.records.duplicates', 0):>5.0f} "
            f"{stats.get('net.sync.timeouts', 0):>8.0f} "
            f"{lag if lag is not None else float('nan'):>8.1f} "
            f"{store.get('store.shard.keys_total', 0):>6} "
            f"{store.get('store.engine.syncs', 0):>6} "
            f"{conflict_txt:>18}"
        )
    lines.append("")
    health_header = (
        f"{'region':<12} {'hbeats':>7} {'susp':>5} {'recov':>5} "
        f"{'hints q/r/d':>12} {'brk':>4} {'shed':>5} {'scrub c/r/q':>12} "
        f"{'retries':>7} {'t/o':>5}"
    )
    lines.append(health_header)
    lines.append("-" * len(health_header))
    for region, frame in sorted(snapshot["regions"].items()):
        if frame is None:
            lines.append(f"{region:<12} {'unreachable':>7}")
            continue
        stats = frame.get("stats", {})
        counters = frame.get("registry", {}).get("counters", {})
        hints = (
            f"{stats.get('net.handoff.queued', 0):.0f}/"
            f"{stats.get('net.handoff.replayed', 0):.0f}/"
            f"{stats.get('net.handoff.dropped', 0):.0f}"
        )
        scrub = (
            f"{stats.get('store.scrub.corrupt', 0):.0f}/"
            f"{stats.get('store.scrub.repaired', 0):.0f}/"
            f"{stats.get('store.scrub.quarantined', 0):.0f}"
        )
        shed = (
            stats.get("net.overload.shed_ops", 0)
            + stats.get("net.overload.shed_records", 0)
        )
        lines.append(
            f"{region:<12} "
            f"{stats.get('net.health.heartbeats', 0):>7.0f} "
            f"{stats.get('net.health.suspects', 0):>5.0f} "
            f"{stats.get('net.health.recoveries', 0):>5.0f} "
            f"{hints:>12} "
            f"{stats.get('net.breaker.opened', 0):>4.0f} "
            f"{shed:>5.0f} "
            f"{scrub:>12} "
            # Client counters live in the process-global registry: they
            # are populated when the fleet shares the server process
            # (in-process mode) and stay 0 under --subprocess.
            f"{counters.get('client.retries', 0):>7} "
            f"{counters.get('client.timeouts', 0):>5}"
        )
    if snapshot.get("proxy"):
        lines.append("")
        lines.append(
            f"{'link':<20} {'delivered':>9} {'dropped':>8} {'dup':>5} "
            f"{'reorder':>7} {'partition':>9} {'down':>5}"
        )
        for name, link in sorted(snapshot["proxy"].items()):
            lines.append(
                f"{name:<20} {link.get('delivered', 0):>9} "
                f"{link.get('dropped', 0):>8} "
                f"{link.get('duplicated', 0):>5} "
                f"{link.get('reordered', 0):>7} "
                f"{link.get('partition_drops', 0):>9} "
                f"{link.get('down_drops', 0):>5}"
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """Live fleet metrics: poll, render, repeat."""
    import asyncio
    import time as _time

    with open(args.topology, encoding="utf-8") as handle:
        topology = json.load(handle)

    iteration = 0
    try:
        while True:
            iteration += 1
            snapshot = asyncio.run(_top_snapshot(topology))
            if args.json:
                print(json.dumps(snapshot, sort_keys=True))
            else:
                if iteration > 1:
                    print()
                print(_render_top(snapshot))
            reachable = any(
                frame is not None
                for frame in snapshot["regions"].values()
            )
            if args.iterations and iteration >= args.iterations:
                return 0 if reachable else 1
            _time.sleep(args.interval_s)
    except KeyboardInterrupt:
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IPA: make applications invariant-preserving "
        "under weak consistency",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze", help="run the full IPA analysis and print the patch"
    )
    analyze.add_argument("specfile")
    analyze.add_argument(
        "--max-effects", type=int, default=2,
        help="max extra effects per repair (default 2)",
    )
    analyze.add_argument(
        "--no-rule-changes", action="store_true",
        help="only repair under the declared convergence rules",
    )
    analyze.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the conflict scan (default 1; "
        "results are identical for any value)",
    )
    analyze.add_argument(
        "--no-cache", action="store_true",
        help="disable the solver-query cache",
    )
    analyze.add_argument(
        "--cache-dir", default=".ipa-cache", metavar="DIR",
        help="persistent solver-cache directory (default .ipa-cache)",
    )
    _add_trace_flags(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    conflicts = sub.add_parser(
        "conflicts",
        help="detect conflicting operation pairs (static analysis), "
        "or query a live run's durable conflict ledger (--ledger)",
    )
    conflicts.add_argument(
        "specfile", nargs="?", default=None,
        help="specification to analyse (omit with --ledger)",
    )
    conflicts.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="query the runtime conflict ledgers under a live run's "
        "data directory (e.g. <workdir>/data) instead of analysing "
        "a spec",
    )
    conflicts.add_argument(
        "--kind", choices=("violation", "repair", "compensation"),
        default=None,
        help="with --ledger: only show records of this kind",
    )
    conflicts.add_argument(
        "--json", action="store_true",
        help="with --ledger: print records as JSON",
    )
    conflicts.set_defaults(func=_cmd_conflicts)

    classify = sub.add_parser(
        "classify", help="classify invariants (Table 1 taxonomy)"
    )
    classify.add_argument("specfile")
    classify.set_defaults(func=_cmd_classify)

    simulate = sub.add_parser(
        "simulate",
        help="run one closed-loop Tournament simulation",
    )
    simulate.add_argument(
        "--config", default="Causal",
        help="system configuration: Strong, Indigo, IPA or Causal "
        "(default Causal)",
    )
    simulate.add_argument(
        "--regions", type=int, default=3,
        help="number of geo-replicated regions (default 3)",
    )
    simulate.add_argument(
        "--clients", type=int, default=32, metavar="N",
        help="closed-loop clients per region (default 32)",
    )
    simulate.add_argument(
        "--batch-ms", type=float, default=0.0, metavar="MS",
        help="replication coalescing window in simulated ms; 0 ships "
        "one message per commit record (default 0)",
    )
    simulate.add_argument(
        "--duration-ms", type=float, default=10_000.0, metavar="MS",
        help="measurement window in simulated ms (default 10000)",
    )
    simulate.add_argument(
        "--warmup-ms", type=float, default=1_000.0, metavar="MS",
        help="warm-up before the window (default 1000)",
    )
    simulate.add_argument(
        "--think-ms", type=float, default=100.0, metavar="MS",
        help="per-client think time between operations (default 100)",
    )
    simulate.add_argument(
        "--seed", type=int, default=23,
        help="workload seed (default 23)",
    )
    simulate.add_argument(
        "--fail-on-violation", action="store_true",
        help="judge the run with the runtime oracles (convergence, "
        "invariants, session monotonicity) and exit nonzero if any "
        "fires",
    )
    _add_engine_flags(simulate)
    _add_compile_flags(simulate)
    _add_trace_flags(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    check = sub.add_parser(
        "check",
        help="explore fault schedules against an application with "
        "runtime oracles; shrink and save counterexamples",
    )
    check.add_argument(
        "app", nargs="?", default=None, metavar="APP",
        help="application to check: tournament, ticket, tpcw or "
        "twitter (omit with --replay)",
    )
    check.add_argument(
        "--config", default="Causal",
        help="checker configuration: Causal, IPA or Strong "
        "(default Causal)",
    )
    check.add_argument(
        "--trials", type=int, default=15, metavar="N",
        help="maximum trials to explore (default 15)",
    )
    check.add_argument(
        "--budget-s", type=float, default=60.0, metavar="S",
        help="wall-clock budget in seconds (default 60)",
    )
    check.add_argument(
        "--seed", type=int, default=11,
        help="root exploration seed (default 11)",
    )
    check.add_argument(
        "--n-ops", type=int, default=40, metavar="N",
        help="client operations per generated trace (default 40)",
    )
    check.add_argument(
        "--out", metavar="DIR", default=None,
        help="write a replayable repro file for the first "
        "counterexample into DIR",
    )
    check.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging minimisation of the first "
        "counterexample",
    )
    check.add_argument(
        "--expect", choices=("violation", "clean"), default=None,
        help="CI mode: exit 0 iff the sweep found a violation "
        "('violation') or none ('clean')",
    )
    check.add_argument(
        "--replay", metavar="FILE", default=None,
        help="re-execute a repro file and verify the recorded verdict",
    )
    check.add_argument(
        "--json", action="store_true",
        help="print a machine-readable JSON report",
    )
    _add_compile_flags(check)
    check.set_defaults(func=_cmd_check)

    trace = sub.add_parser(
        "trace",
        help="run analysis + a short simulation with tracing on and "
        "export a Chrome trace",
    )
    trace.add_argument("specfile")
    trace.add_argument(
        "--trace-out", metavar="FILE", default="trace.json",
        help="output Chrome trace-event JSON (default trace.json)",
    )
    trace.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the conflict scan (default 1); "
        "worker spans stitch into the same trace",
    )
    trace.add_argument(
        "--clients", type=int, default=8, metavar="N",
        help="closed-loop clients per region (default 8)",
    )
    trace.add_argument(
        "--duration-ms", type=float, default=2_000.0, metavar="MS",
        help="simulation measurement window (default 2000)",
    )
    trace.add_argument(
        "--seed", type=int, default=23,
        help="workload seed (default 23)",
    )
    trace.set_defaults(func=_cmd_trace)

    serve = sub.add_parser(
        "serve",
        help="run one region's live replica server against a recorded "
        "deployment (see 'load' and the README quickstart)",
    )
    serve.add_argument(
        "--deployment", required=True, metavar="FILE",
        help="deployment JSON recorded from a simulated trial",
    )
    serve.add_argument(
        "--topology", required=True, metavar="FILE",
        help="topology JSON: ports per region, proxy link ports, epoch",
    )
    serve.add_argument(
        "--region", required=True,
        help="which region this server is (must be in the deployment)",
    )
    serve.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="directory for the durable commit log (survives crashes)",
    )
    serve.add_argument(
        "--fsync", action="store_true",
        help="fsync the commit log on every append",
    )
    serve.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="spool spans write-through into DIR for fleet stitching "
        "(survives SIGKILL; see 'load --trace-dir')",
    )
    _add_engine_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    load = sub.add_parser(
        "load",
        help="record a simulated trial, run it against a live cluster "
        "under chaos, and compare state digests byte-for-byte",
    )
    load.add_argument(
        "app", nargs="?", default="tournament", metavar="APP",
        help="application to run: tournament, ticket, tpcw or twitter "
        "(default tournament)",
    )
    load.add_argument(
        "--config", default="Causal",
        help="configuration: Causal or IPA (default Causal; live "
        "serving is causal-mode only)",
    )
    load.add_argument(
        "--seed", type=int, default=11,
        help="trial seed (default 11)",
    )
    load.add_argument(
        "--index", type=int, default=3, metavar="N",
        help="trial index; selects the fault-plan kind "
        "(index %% 5: clean, lossy, partition, partition-crash, "
        "heavy; default 3 = partition-crash)",
    )
    load.add_argument(
        "--n-ops", type=int, default=40, metavar="N",
        help="client operations in the trace (default 40)",
    )
    load.add_argument(
        "--time-scale", type=float, default=0.05, metavar="X",
        help="live seconds per simulated second (default 0.05: a "
        "20x-compressed replay)",
    )
    load.add_argument(
        "--deadline-s", type=float, default=120.0, metavar="S",
        help="overall wall-clock deadline (default 120)",
    )
    load.add_argument(
        "--subprocess", action="store_true",
        help="run each region as a real OS process ('python -m repro "
        "serve'); crash windows then SIGKILL the process",
    )
    load.add_argument(
        "--fsync", action="store_true",
        help="fsync commit logs on every append",
    )
    load.add_argument(
        "--workdir", metavar="DIR", default=None,
        help="working directory for logs and spec files (default: a "
        "fresh temp dir)",
    )
    load.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the live-run report JSON (BENCH_serve.json shape)",
    )
    load.add_argument(
        "--json", action="store_true",
        help="print the full report as JSON",
    )
    load.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="trace the whole fleet into DIR and stitch one "
        "Perfetto-loadable trace.json (per-replica tracks, "
        "cross-process flow arrows)",
    )
    load.add_argument(
        "--corrupt", action="append", metavar="REGION", default=None,
        help="seed mid-file bit rot into REGION's commit log and "
        "object log while it is down in a crash window; the salvage "
        "path and scrubber must heal it (repeatable)",
    )
    load.add_argument(
        "--no-supervise", action="store_true",
        help="disable the supervisor: crash windows restart replicas "
        "from the harness directly (legacy behaviour)",
    )
    load.add_argument(
        "--max-restart-attempts", type=int, default=5, metavar="N",
        help="supervised restart attempts per incident before "
        "declaring the replica permanently dead (default 5)",
    )
    load.add_argument(
        "--heartbeat-ms", type=float, default=25.0, metavar="MS",
        help="inter-replica heartbeat interval feeding the phi "
        "failure detector (default 25)",
    )
    load.add_argument(
        "--overload-limit", type=int, default=0, metavar="N",
        help="max parked ops per replica before new ops are shed "
        "with a retryable 'overloaded' ack (default 0: unlimited)",
    )
    load.add_argument(
        "--record-limit", type=int, default=0, metavar="N",
        help="max buffered remote records per replica before "
        "non-gating records are shed to anti-entropy "
        "(default 0: unlimited)",
    )
    load.add_argument(
        "--scrub-ms", type=float, default=0.0, metavar="MS",
        help="periodic storage-scrub interval per replica; 0 scrubs "
        "only at startup (default 0)",
    )
    _add_engine_flags(load)
    load.set_defaults(func=_cmd_load)

    top = sub.add_parser(
        "top",
        help="poll a live fleet's metrics (replicas + chaos proxy) "
        "and render a refreshing status table",
    )
    top.add_argument(
        "--topology", required=True, metavar="FILE",
        help="topology JSON of the running fleet (written by 'load' "
        "into its workdir)",
    )
    top.add_argument(
        "--interval-s", type=float, default=1.0, metavar="S",
        help="seconds between polls (default 1.0)",
    )
    top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N polls (default 0: poll until Ctrl-C)",
    )
    top.add_argument(
        "--json", action="store_true",
        help="print one JSON snapshot per poll instead of the table",
    )
    top.set_defaults(func=_cmd_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
