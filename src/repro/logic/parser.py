"""Parser for the paper's invariant and effect language.

The concrete syntax follows the annotations of Figure 1 of the paper::

    forall(Player: p, Tournament: t) :- enrolled(p, t) =>
        player(p) and tournament(t)
    forall(Player: p, q, Tournament: t) :- inMatch(p, q, t) =>
        enrolled(p, t) and enrolled(q, t) and (active(t) or finished(t))
    forall(Tournament: t) :- #enrolled(*, t) <= Capacity
    forall(Tournament: t) :- not (active(t) and finished(t))

Grammar (informal)::

    invariant := quantified | formula
    quantified:= ('forall' | 'exists') '(' binders ')' ':-' formula
    binders   := SortName ':' var (',' var)* (',' binders)?
    formula   := iff
    iff       := implies ('<=>' implies)*
    implies   := or ('=>' or)*              -- right associative
    or        := and ('or' and)*
    and       := unary ('and' unary)*
    unary     := 'not' unary | primary
    primary   := '(' formula ')' | 'true' | 'false' | cmp | atom
    cmp       := numterm OP numterm          -- OP in <= < >= > == !=
    numterm   := '#' app | NUMBER | app | NAME   -- NAME is a parameter
    app       := NAME '(' arg (',' arg)* ')'
    arg       := NAME | '*'

Names are resolved against a :class:`SymbolTable`: bound variables first,
then predicate declarations; an unresolved bare name inside a comparison
is treated as a symbolic :class:`~repro.logic.ast.Param`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.errors import ParseError, SortError
from repro.logic.ast import (
    And,
    Atom,
    Card,
    Cmp,
    Exists,
    FalseF,
    ForAll,
    Formula,
    Iff,
    Implies,
    IntConst,
    Not,
    NumPred,
    NumTerm,
    Or,
    Param,
    PredicateDecl,
    Sort,
    Term,
    TrueF,
    Var,
    Wildcard,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<cmp><=>|=>|:-|<=|>=|==|!=|<|>)
  | (?P<punct>[(),:#*])
  | (?P<num>\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"forall", "exists", "and", "or", "not", "true", "false"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "name" and value in _KEYWORDS:
            kind = "kw"
        tokens.append(_Token(kind, value, match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


@dataclass
class SymbolTable:
    """Name resolution context for the parser.

    ``predicates`` maps predicate name to its declaration, ``sorts`` maps
    sort name to the :class:`Sort` object, and ``variables`` carries any
    free variables allowed in the formula (e.g. operation parameters).
    """

    predicates: Mapping[str, PredicateDecl]
    sorts: Mapping[str, Sort] = field(default_factory=dict)
    variables: Mapping[str, Var] = field(default_factory=dict)


class _Parser:
    def __init__(self, tokens: list[_Token], symbols: SymbolTable) -> None:
        self._tokens = tokens
        self._index = 0
        self._symbols = symbols
        self._scope: dict[str, Var] = dict(symbols.variables)

    # -- token helpers ----------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise ParseError(
                f"expected {text!r}, found {token.text!r}", token.pos
            )
        return token

    def _at(self, text: str) -> bool:
        return self._peek().text == text

    # -- grammar ----------------------------------------------------------

    def parse(self) -> Formula:
        formula = self._invariant()
        token = self._peek()
        if token.kind != "eof":
            raise ParseError(f"trailing input {token.text!r}", token.pos)
        return formula

    def _invariant(self) -> Formula:
        token = self._peek()
        if token.kind == "kw" and token.text in ("forall", "exists"):
            self._next()
            self._expect("(")
            binders = self._binders()
            self._expect(")")
            self._expect(":-")
            for var in binders:
                self._scope[var.name] = var
            body = self._formula()
            for var in binders:
                del self._scope[var.name]
            cls = ForAll if token.text == "forall" else Exists
            return cls(tuple(binders), body)
        return self._formula()

    def _binders(self) -> list[Var]:
        binders: list[Var] = []
        current_sort: Sort | None = None
        while True:
            name_token = self._next()
            if name_token.kind != "name":
                raise ParseError(
                    f"expected name in binder, found {name_token.text!r}",
                    name_token.pos,
                )
            if self._at(":"):
                self._next()
                sort = self._symbols.sorts.get(name_token.text)
                if sort is None:
                    sort = Sort(name_token.text)
                current_sort = sort
                var_token = self._next()
                if var_token.kind != "name":
                    raise ParseError(
                        f"expected variable after sort, found "
                        f"{var_token.text!r}",
                        var_token.pos,
                    )
                binders.append(Var(var_token.text, current_sort))
            else:
                if current_sort is None:
                    raise ParseError(
                        f"binder {name_token.text!r} has no sort",
                        name_token.pos,
                    )
                binders.append(Var(name_token.text, current_sort))
            if self._at(","):
                self._next()
                continue
            return binders

    def _formula(self) -> Formula:
        return self._iff()

    def _iff(self) -> Formula:
        lhs = self._implies()
        while self._at("<=>"):
            self._next()
            rhs = self._implies()
            lhs = Iff(lhs, rhs)
        return lhs

    def _implies(self) -> Formula:
        lhs = self._or()
        if self._at("=>"):
            self._next()
            rhs = self._implies()
            return Implies(lhs, rhs)
        return lhs

    def _or(self) -> Formula:
        parts = [self._and()]
        while self._peek().text == "or":
            self._next()
            parts.append(self._and())
        if len(parts) == 1:
            return parts[0]
        return Or(tuple(parts))

    def _and(self) -> Formula:
        parts = [self._unary()]
        while self._peek().text == "and":
            self._next()
            parts.append(self._unary())
        if len(parts) == 1:
            return parts[0]
        return And(tuple(parts))

    def _unary(self) -> Formula:
        token = self._peek()
        if token.kind == "kw" and token.text == "not":
            self._next()
            return Not(self._unary())
        return self._primary()

    def _primary(self) -> Formula:
        token = self._peek()
        if token.text == "(":
            # Could be a parenthesised formula or the lhs of a comparison
            # like "(x) <= 3"; parenthesised numeric terms are not in the
            # paper's syntax, so treat as formula.
            self._next()
            inner = self._formula()
            self._expect(")")
            return inner
        if token.kind == "kw" and token.text == "true":
            self._next()
            return TrueF()
        if token.kind == "kw" and token.text == "false":
            self._next()
            return FalseF()
        if token.text == "#" or token.kind == "num":
            lhs = self._numterm()
            return self._finish_cmp(lhs)
        if token.kind == "name":
            return self._atom_or_cmp()
        raise ParseError(f"unexpected token {token.text!r}", token.pos)

    def _finish_cmp(self, lhs: NumTerm) -> Cmp:
        op_token = self._next()
        if op_token.text not in ("<=", "<", ">=", ">", "==", "!="):
            raise ParseError(
                f"expected comparison operator, found {op_token.text!r}",
                op_token.pos,
            )
        rhs = self._numterm()
        return Cmp(op_token.text, lhs, rhs)

    def _atom_or_cmp(self) -> Formula:
        token = self._next()
        name = token.text
        if self._at("("):
            pred = self._symbols.predicates.get(name)
            if pred is None:
                raise ParseError(f"unknown predicate {name!r}", token.pos)
            args = self._args(pred)
            if pred.numeric:
                return self._finish_cmp(NumPred(pred, args))
            atom = Atom(pred, args)
            nxt = self._peek()
            if nxt.text in ("<=", "<", ">=", ">", "==", "!="):
                raise ParseError(
                    f"boolean predicate {name!r} used in comparison",
                    nxt.pos,
                )
            return atom
        # Bare name: a parameter compared against something.
        return self._finish_cmp(self._resolve_numname(token))

    def _numterm(self) -> NumTerm:
        token = self._next()
        if token.text == "#":
            name_token = self._next()
            pred = self._symbols.predicates.get(name_token.text)
            if pred is None:
                raise ParseError(
                    f"unknown predicate {name_token.text!r}", name_token.pos
                )
            args = self._args(pred)
            return Card(pred, args)
        if token.kind == "num":
            return IntConst(int(token.text))
        if token.kind == "name":
            if self._at("("):
                pred = self._symbols.predicates.get(token.text)
                if pred is None:
                    raise ParseError(
                        f"unknown predicate {token.text!r}", token.pos
                    )
                if not pred.numeric:
                    raise ParseError(
                        f"boolean predicate {token.text!r} used as a "
                        "numeric term",
                        token.pos,
                    )
                return NumPred(pred, self._args(pred))
            return self._resolve_numname(token)
        raise ParseError(f"expected numeric term, found {token.text!r}",
                         token.pos)

    def _resolve_numname(self, token: _Token) -> NumTerm:
        if token.text in self._scope:
            raise ParseError(
                f"variable {token.text!r} used as a numeric term", token.pos
            )
        return Param(token.text)

    def _args(self, pred: PredicateDecl) -> tuple[Term, ...]:
        self._expect("(")
        args: list[Term] = []
        position = 0
        while True:
            token = self._next()
            if position >= pred.arity:
                raise ParseError(
                    f"too many arguments for {pred.name}/{pred.arity}",
                    token.pos,
                )
            expected_sort = pred.arg_sorts[position]
            if token.text == "*":
                args.append(Wildcard(expected_sort))
            elif token.kind == "name":
                var = self._scope.get(token.text)
                if var is None:
                    raise ParseError(
                        f"unbound variable {token.text!r}", token.pos
                    )
                if var.sort != expected_sort:
                    raise SortError(
                        f"argument {var.name} of {pred.name} has sort "
                        f"{var.sort.name}, expected {expected_sort.name}"
                    )
                args.append(var)
            else:
                raise ParseError(
                    f"expected argument, found {token.text!r}", token.pos
                )
            position += 1
            closing = self._next()
            if closing.text == ",":
                continue
            if closing.text == ")":
                break
            raise ParseError(
                f"expected ',' or ')', found {closing.text!r}", closing.pos
            )
        if position != pred.arity:
            raise ParseError(
                f"too few arguments for {pred.name}/{pred.arity}",
                self._peek().pos,
            )
        return tuple(args)


def parse_formula(text: str, symbols: SymbolTable) -> Formula:
    """Parse ``text`` into a formula, resolving names via ``symbols``."""
    return _Parser(_tokenize(text), symbols).parse()


def parse_invariant(text: str, symbols: SymbolTable) -> Formula:
    """Parse an invariant annotation (alias of :func:`parse_formula`).

    Kept as a separate entry point because application front-ends treat
    invariants (usually quantified) and effect guards differently.
    """
    return parse_formula(text, symbols)
