"""Bounded-domain grounding of first-order formulas.

The IPA analysis decides queries of the form "is there a small database
state in which <formula> holds?".  Pairwise operation analysis is sound
(Gotsman et al., POPL'16), and each query only mentions the handful of
entities named by one pair of operations, so it suffices to search for
models over a *small finite domain* -- two or three constants per sort.

This module turns a quantified formula into an equivalent quantifier-free
formula over *ground atoms* (boolean predicate applications whose
arguments are all domain constants) and *ground numeric terms*.  The
solver then treats each ground atom as a propositional variable and each
numeric term as a small bounded integer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import GroundingError
from repro.logic.ast import (
    Add,
    And,
    Atom,
    Card,
    Cmp,
    Const,
    Exists,
    FalseF,
    ForAll,
    Formula,
    Iff,
    Implies,
    IntConst,
    Not,
    NumPred,
    NumTerm,
    Or,
    Param,
    PredicateDecl,
    Sort,
    Term,
    TrueF,
    Var,
    Wildcard,
    conj,
    disj,
)
from repro.logic.transform import substitute, to_nnf


@dataclass(frozen=True)
class Domain:
    """A finite universe: a tuple of constants per sort.

    Use :meth:`of_sizes` to build the default universe used by the
    analysis (``k`` fresh constants per sort).
    """

    constants: Mapping[Sort, tuple[Const, ...]]

    @classmethod
    def of_sizes(cls, sizes: Mapping[Sort, int]) -> "Domain":
        universe = {
            sort: tuple(
                Const(f"{sort.name.lower()}{i}", sort) for i in range(size)
            )
            for sort, size in sizes.items()
        }
        return cls(universe)

    @classmethod
    def uniform(cls, sorts: Iterable[Sort], size: int) -> "Domain":
        return cls.of_sizes({sort: size for sort in sorts})

    def of(self, sort: Sort) -> tuple[Const, ...]:
        try:
            return self.constants[sort]
        except KeyError:
            raise GroundingError(f"no domain for sort {sort.name}") from None

    def size(self, sort: Sort) -> int:
        return len(self.of(sort))

    def extended(self, extra: Mapping[Sort, Iterable[Const]]) -> "Domain":
        """A new domain with ``extra`` constants added (deduplicated)."""
        merged: dict[Sort, tuple[Const, ...]] = dict(self.constants)
        for sort, consts in extra.items():
            seen = list(merged.get(sort, ()))
            for const in consts:
                if const not in seen:
                    seen.append(const)
            merged[sort] = tuple(seen)
        return Domain(merged)

    def assignments(
        self, variables: Iterable[Var]
    ) -> Iterator[dict[Var, Const]]:
        """All ways of mapping ``variables`` to domain constants."""
        variables = tuple(variables)
        pools = [self.of(v.sort) for v in variables]
        for combo in itertools.product(*pools):
            yield dict(zip(variables, combo))


def ground(formula: Formula, domain: Domain) -> Formula:
    """Expand quantifiers of ``formula`` over ``domain``.

    The result contains no quantifiers and no variables; its boolean
    leaves are :class:`Atom` nodes with constant arguments, and its
    numeric leaves are :class:`Card`/:class:`NumPred` terms with constant
    or wildcard arguments.  Raises :class:`GroundingError` if the formula
    has free variables.
    """
    grounded = _ground(to_nnf(formula), domain)
    _check_ground(grounded)
    return grounded


def _ground(formula: Formula, domain: Domain) -> Formula:
    if isinstance(formula, (TrueF, FalseF, Atom, Cmp)):
        return formula
    if isinstance(formula, Not):
        return Not(_ground(formula.arg, domain))
    if isinstance(formula, And):
        return conj(_ground(a, domain) for a in formula.args)
    if isinstance(formula, Or):
        return disj(_ground(a, domain) for a in formula.args)
    if isinstance(formula, (Implies, Iff)):
        cls = type(formula)
        return cls(_ground(formula.lhs, domain), _ground(formula.rhs, domain))
    if isinstance(formula, ForAll):
        return conj(
            _ground(substitute(formula.body, assignment), domain)
            for assignment in domain.assignments(formula.vars)
        )
    if isinstance(formula, Exists):
        return disj(
            _ground(substitute(formula.body, assignment), domain)
            for assignment in domain.assignments(formula.vars)
        )
    raise TypeError(f"unknown formula node {formula!r}")


def _check_term(term: Term, context: str) -> None:
    if isinstance(term, Var):
        raise GroundingError(f"free variable {term.name} in {context}")


def _check_num(term: NumTerm) -> None:
    if isinstance(term, (IntConst, Param)):
        return
    if isinstance(term, (NumPred, Card)):
        for arg in term.args:
            _check_term(arg, str(term))
        return
    if isinstance(term, Add):
        for sub in term.terms:
            _check_num(sub)
        return
    raise TypeError(f"unknown numeric term {term!r}")


def _check_ground(formula: Formula) -> None:
    if isinstance(formula, (TrueF, FalseF)):
        return
    if isinstance(formula, Atom):
        for arg in formula.args:
            _check_term(arg, str(formula))
            if isinstance(arg, Wildcard):
                raise GroundingError(
                    f"wildcard in boolean atom {formula}; wildcards are "
                    "only allowed in cardinality terms and effects"
                )
        return
    if isinstance(formula, Cmp):
        _check_num(formula.lhs)
        _check_num(formula.rhs)
        return
    if isinstance(formula, Not):
        _check_ground(formula.arg)
        return
    if isinstance(formula, (And, Or)):
        for arg in formula.args:
            _check_ground(arg)
        return
    if isinstance(formula, (Implies, Iff)):
        _check_ground(formula.lhs)
        _check_ground(formula.rhs)
        return
    raise GroundingError(f"formula is not ground: {formula}")


def expand_card(card: Card, domain: Domain) -> list[Atom]:
    """The ground atoms a cardinality term counts over.

    ``#enrolled(*, t0)`` with a 2-player domain expands to
    ``[enrolled(player0, t0), enrolled(player1, t0)]``.
    """
    pools: list[tuple[Term, ...]] = []
    for arg in card.args:
        if isinstance(arg, Wildcard):
            pools.append(domain.of(arg.sort))
        else:
            pools.append((arg,))
    return [Atom(card.pred, combo) for combo in itertools.product(*pools)]


def expand_wildcard_args(
    pred: PredicateDecl, args: tuple[Term, ...], domain: Domain
) -> list[tuple[Term, ...]]:
    """All ground argument tuples matched by ``args`` (with wildcards)."""
    pools: list[tuple[Term, ...]] = []
    for arg in args:
        if isinstance(arg, Wildcard):
            pools.append(domain.of(arg.sort))
        else:
            pools.append((arg,))
    return [combo for combo in itertools.product(*pools)]


def collect_atoms(formula: Formula, domain: Domain) -> set[Atom]:
    """All ground boolean atoms occurring in ``formula``.

    Cardinality terms contribute the atoms they count over, so the solver
    can allocate a propositional variable for each.
    """
    atoms: set[Atom] = set()
    _collect(formula, domain, atoms, set())
    return atoms


def collect_numpreds(formula: Formula, domain: Domain) -> set[NumPred]:
    """All ground numeric predicate applications occurring in ``formula``."""
    numpreds: set[NumPred] = set()
    _collect(formula, domain, set(), numpreds)
    return numpreds


def _collect(
    formula: Formula,
    domain: Domain,
    atoms: set[Atom],
    numpreds: set[NumPred],
) -> None:
    if isinstance(formula, (TrueF, FalseF)):
        return
    if isinstance(formula, Atom):
        atoms.add(formula)
        return
    if isinstance(formula, Cmp):
        for side in (formula.lhs, formula.rhs):
            _collect_num(side, domain, atoms, numpreds)
        return
    if isinstance(formula, Not):
        _collect(formula.arg, domain, atoms, numpreds)
        return
    if isinstance(formula, (And, Or)):
        for arg in formula.args:
            _collect(arg, domain, atoms, numpreds)
        return
    if isinstance(formula, (Implies, Iff)):
        _collect(formula.lhs, domain, atoms, numpreds)
        _collect(formula.rhs, domain, atoms, numpreds)
        return
    raise GroundingError(f"formula is not ground: {formula}")


def _collect_num(
    term: NumTerm,
    domain: Domain,
    atoms: set[Atom],
    numpreds: set[NumPred],
) -> None:
    if isinstance(term, (IntConst, Param)):
        return
    if isinstance(term, Card):
        atoms.update(expand_card(term, domain))
        return
    if isinstance(term, NumPred):
        numpreds.add(term)
        return
    if isinstance(term, Add):
        for sub in term.terms:
            _collect_num(sub, domain, atoms, numpreds)
        return
    raise TypeError(f"unknown numeric term {term!r}")
