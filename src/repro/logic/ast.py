"""Abstract syntax for the IPA specification logic.

The language is many-sorted first-order logic with two predicate kinds:

- *boolean* predicates over entity sorts (``enrolled(p, t)``), and
- *numeric* predicates, integer-valued functions of entity arguments
  (``stock(i)``), plus cardinality terms over boolean predicates
  (``#enrolled(*, t)``).

This is exactly the fragment used by the paper's annotations (Figure 1):
universally quantified clauses whose bodies combine boolean atoms with
``and``/``or``/``not``/``=>`` and compare numeric terms against constants
or symbolic parameters such as ``Capacity``.

All nodes are immutable (frozen dataclasses) so they can be used as
dictionary keys and set members, which the grounding and analysis layers
rely on heavily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.errors import ArityError, SortError

# ---------------------------------------------------------------------------
# Sorts and terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class Sort:
    """An entity sort (type), e.g. ``Player`` or ``Tournament``."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True, order=True)
class Var:
    """A sorted first-order variable, e.g. ``p : Player``."""

    name: str
    sort: Sort

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True, order=True)
class Const:
    """A sorted domain constant, e.g. a concrete player ``p0``."""

    name: str
    sort: Sort

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True, order=True)
class Wildcard:
    """The ``*`` argument used in effects and cardinality terms.

    ``enrolled(*, t) = False`` means: for every value of the first
    argument.  ``#enrolled(*, t)`` counts over every value of the first
    argument.  A wildcard carries its sort so grounding knows which domain
    to expand it over.
    """

    sort: Sort

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "*"


Term = Union[Var, Const, Wildcard]


# ---------------------------------------------------------------------------
# Predicate declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class PredicateDecl:
    """Declaration of a predicate: name, argument sorts and kind.

    ``numeric=False`` declares a boolean predicate (a relation);
    ``numeric=True`` declares an integer-valued function (a counter-like
    predicate such as ``stock``).
    """

    name: str
    arg_sorts: tuple[Sort, ...]
    numeric: bool = False

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)

    def __call__(self, *args: Term) -> "Atom | NumPred":
        """Apply the predicate to terms, returning an atom.

        Boolean predicates produce :class:`Atom`; numeric ones produce a
        :class:`NumPred` term that must be wrapped in a comparison.
        """
        self.check_args(args)
        if self.numeric:
            return NumPred(self, tuple(args))
        return Atom(self, tuple(args))

    def check_args(self, args: Iterable[Term]) -> None:
        args = tuple(args)
        if len(args) != self.arity:
            raise ArityError(
                f"predicate {self.name}/{self.arity} applied to "
                f"{len(args)} arguments"
            )
        for expected, term in zip(self.arg_sorts, args):
            if term.sort != expected:
                raise SortError(
                    f"predicate {self.name}: argument {term} has sort "
                    f"{term.sort.name}, expected {expected.name}"
                )

    def __str__(self) -> str:  # pragma: no cover - trivial
        kind = "num" if self.numeric else "bool"
        sorts = ", ".join(s.name for s in self.arg_sorts)
        return f"{self.name}({sorts}) : {kind}"


# ---------------------------------------------------------------------------
# Numeric terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntConst:
    """An integer literal appearing in a comparison."""

    value: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.value)


@dataclass(frozen=True)
class Param:
    """A symbolic integer parameter, e.g. ``Capacity``.

    Parameters are bound to concrete values at analysis time via the
    solver's parameter environment.
    """

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class NumPred:
    """Application of a numeric predicate, e.g. ``stock(i)``."""

    pred: PredicateDecl
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.pred.numeric:
            raise SortError(
                f"predicate {self.pred.name} is boolean; use Atom instead"
            )
        self.pred.check_args(self.args)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.pred.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class Card:
    """Cardinality of a boolean predicate, e.g. ``#enrolled(*, t)``.

    Counts the tuples matching the argument pattern; ``Wildcard``
    positions range over their whole domain.
    """

    pred: PredicateDecl
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if self.pred.numeric:
            raise SortError(
                f"cannot take cardinality of numeric predicate "
                f"{self.pred.name}"
            )
        self.pred.check_args(self.args)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"#{self.pred.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class Add:
    """Sum of numeric terms (used rarely; kept linear and flat)."""

    terms: tuple["NumTerm", ...]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return " + ".join(map(str, self.terms))


NumTerm = Union[IntConst, Param, NumPred, Card, Add]


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class for formula nodes.

    Provides operator sugar so specs can be written in Python:
    ``a & b``, ``a | b``, ``~a``, ``a >> b`` (implies).
    """

    __slots__ = ()

    def __and__(self, other: "Formula") -> "And":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Implies":
        return Implies(self, other)


def _memo_str(node: "Formula", text: str) -> str:
    """Cache ``text`` as ``node``'s rendering and return it.

    Composite nodes memoise their ``str`` form: nodes are immutable and
    shared heavily (ground invariants are reused by thousands of solver
    queries), and the solver cache addresses queries by this rendering,
    so re-deriving it dominates warm-cache analysis time otherwise.
    Frozen dataclasses still carry a ``__dict__``, which keeps the memo
    out of field-based equality, hashing and ``repr``.
    """
    object.__setattr__(node, "_str", text)
    return text


@dataclass(frozen=True)
class TrueF(Formula):
    """The constant ``true``."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "true"


@dataclass(frozen=True)
class FalseF(Formula):
    """The constant ``false``."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "false"


@dataclass(frozen=True)
class Atom(Formula):
    """A boolean predicate applied to terms, e.g. ``enrolled(p, t)``."""

    pred: PredicateDecl
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if self.pred.numeric:
            raise SortError(
                f"predicate {self.pred.name} is numeric; "
                "wrap it in a comparison"
            )
        self.pred.check_args(self.args)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.pred.name}({', '.join(map(str, self.args))})"


# Comparison operators accepted by Cmp.
CMP_OPS = ("<=", "<", ">=", ">", "==", "!=")


@dataclass(frozen=True)
class Cmp(Formula):
    """Comparison between two numeric terms, e.g. ``#enrolled(*, t) <= C``."""

    op: str
    lhs: NumTerm
    rhs: NumTerm

    def __post_init__(self) -> None:
        if self.op not in CMP_OPS:
            raise SortError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.lhs} {self.op} {self.rhs}"


@dataclass(frozen=True)
class Not(Formula):
    arg: Formula

    def __str__(self) -> str:
        return self.__dict__.get("_str") or _memo_str(
            self, f"not ({self.arg})"
        )


@dataclass(frozen=True)
class And(Formula):
    args: tuple[Formula, ...]

    def __str__(self) -> str:
        return self.__dict__.get("_str") or _memo_str(
            self, " and ".join(f"({a})" for a in self.args)
        )


@dataclass(frozen=True)
class Or(Formula):
    args: tuple[Formula, ...]

    def __str__(self) -> str:
        return self.__dict__.get("_str") or _memo_str(
            self, " or ".join(f"({a})" for a in self.args)
        )


@dataclass(frozen=True)
class Implies(Formula):
    lhs: Formula
    rhs: Formula

    def __str__(self) -> str:
        return self.__dict__.get("_str") or _memo_str(
            self, f"({self.lhs}) => ({self.rhs})"
        )


@dataclass(frozen=True)
class Iff(Formula):
    lhs: Formula
    rhs: Formula

    def __str__(self) -> str:
        return self.__dict__.get("_str") or _memo_str(
            self, f"({self.lhs}) <=> ({self.rhs})"
        )


@dataclass(frozen=True)
class ForAll(Formula):
    vars: tuple[Var, ...]
    body: Formula

    def __str__(self) -> str:
        binders = ", ".join(f"{v.sort.name}: {v.name}" for v in self.vars)
        return self.__dict__.get("_str") or _memo_str(
            self, f"forall({binders}) :- {self.body}"
        )


@dataclass(frozen=True)
class Exists(Formula):
    vars: tuple[Var, ...]
    body: Formula

    def __str__(self) -> str:
        binders = ", ".join(f"{v.sort.name}: {v.name}" for v in self.vars)
        return self.__dict__.get("_str") or _memo_str(
            self, f"exists({binders}) :- {self.body}"
        )


def conj(formulas: Iterable[Formula]) -> Formula:
    """Conjoin a sequence of formulas, flattening trivial cases."""
    items = [f for f in formulas if not isinstance(f, TrueF)]
    if any(isinstance(f, FalseF) for f in items):
        return FalseF()
    if not items:
        return TrueF()
    if len(items) == 1:
        return items[0]
    return And(tuple(items))


def disj(formulas: Iterable[Formula]) -> Formula:
    """Disjoin a sequence of formulas, flattening trivial cases."""
    items = [f for f in formulas if not isinstance(f, FalseF)]
    if any(isinstance(f, TrueF) for f in items):
        return TrueF()
    if not items:
        return FalseF()
    if len(items) == 1:
        return items[0]
    return Or(tuple(items))
