"""Formula transformations: substitution, NNF, negation, simplification.

These are pure structural recursions over the AST in
:mod:`repro.logic.ast`.  They are used by the grounding layer (which wants
negation normal form with quantifiers expanded) and by the analysis layer
(which substitutes operation parameters and effect values into
invariants).
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SortError
from repro.logic.ast import (
    Add,
    And,
    Atom,
    Card,
    Cmp,
    Const,
    Exists,
    FalseF,
    ForAll,
    Formula,
    Iff,
    Implies,
    IntConst,
    Not,
    NumPred,
    NumTerm,
    Or,
    Param,
    Term,
    TrueF,
    Var,
    Wildcard,
    conj,
    disj,
)

Subst = Mapping[Var, Term]


def _subst_term(term: Term, mapping: Subst) -> Term:
    if isinstance(term, Var) and term in mapping:
        replacement = mapping[term]
        if replacement.sort != term.sort:
            raise SortError(
                f"substituting {replacement} (sort {replacement.sort.name}) "
                f"for {term} (sort {term.sort.name})"
            )
        return replacement
    return term


def _subst_num(term: NumTerm, mapping: Subst) -> NumTerm:
    if isinstance(term, (IntConst, Param)):
        return term
    if isinstance(term, NumPred):
        return NumPred(term.pred, tuple(_subst_term(a, mapping) for a in term.args))
    if isinstance(term, Card):
        return Card(term.pred, tuple(_subst_term(a, mapping) for a in term.args))
    if isinstance(term, Add):
        return Add(tuple(_subst_num(t, mapping) for t in term.terms))
    raise TypeError(f"unknown numeric term {term!r}")


def substitute(formula: Formula, mapping: Subst) -> Formula:
    """Replace free variables in ``formula`` according to ``mapping``.

    Bound variables shadow the mapping (they are removed from it under
    their binder), so capture cannot occur as long as replacement terms
    are constants -- which is the only case the analysis uses.
    """
    if isinstance(formula, (TrueF, FalseF)):
        return formula
    if isinstance(formula, Atom):
        return Atom(
            formula.pred, tuple(_subst_term(a, mapping) for a in formula.args)
        )
    if isinstance(formula, Cmp):
        return Cmp(
            formula.op,
            _subst_num(formula.lhs, mapping),
            _subst_num(formula.rhs, mapping),
        )
    if isinstance(formula, Not):
        return Not(substitute(formula.arg, mapping))
    if isinstance(formula, And):
        return And(tuple(substitute(a, mapping) for a in formula.args))
    if isinstance(formula, Or):
        return Or(tuple(substitute(a, mapping) for a in formula.args))
    if isinstance(formula, Implies):
        return Implies(
            substitute(formula.lhs, mapping), substitute(formula.rhs, mapping)
        )
    if isinstance(formula, Iff):
        return Iff(
            substitute(formula.lhs, mapping), substitute(formula.rhs, mapping)
        )
    if isinstance(formula, (ForAll, Exists)):
        inner = {v: t for v, t in mapping.items() if v not in formula.vars}
        cls = type(formula)
        return cls(formula.vars, substitute(formula.body, inner))
    raise TypeError(f"unknown formula node {formula!r}")


def _term_vars(term: Term) -> set[Var]:
    return {term} if isinstance(term, Var) else set()


def _num_vars(term: NumTerm) -> set[Var]:
    if isinstance(term, (IntConst, Param)):
        return set()
    if isinstance(term, (NumPred, Card)):
        out: set[Var] = set()
        for a in term.args:
            out |= _term_vars(a)
        return out
    if isinstance(term, Add):
        out = set()
        for t in term.terms:
            out |= _num_vars(t)
        return out
    raise TypeError(f"unknown numeric term {term!r}")


def free_vars(formula: Formula) -> set[Var]:
    """The set of free variables of ``formula``."""
    if isinstance(formula, (TrueF, FalseF)):
        return set()
    if isinstance(formula, Atom):
        out: set[Var] = set()
        for a in formula.args:
            out |= _term_vars(a)
        return out
    if isinstance(formula, Cmp):
        return _num_vars(formula.lhs) | _num_vars(formula.rhs)
    if isinstance(formula, Not):
        return free_vars(formula.arg)
    if isinstance(formula, (And, Or)):
        out = set()
        for a in formula.args:
            out |= free_vars(a)
        return out
    if isinstance(formula, (Implies, Iff)):
        return free_vars(formula.lhs) | free_vars(formula.rhs)
    if isinstance(formula, (ForAll, Exists)):
        return free_vars(formula.body) - set(formula.vars)
    raise TypeError(f"unknown formula node {formula!r}")


_NEGATED_CMP = {
    "<=": ">",
    "<": ">=",
    ">=": "<",
    ">": "<=",
    "==": "!=",
    "!=": "==",
}


def negate(formula: Formula) -> Formula:
    """The negation of ``formula``, pushed one level where cheap."""
    if isinstance(formula, TrueF):
        return FalseF()
    if isinstance(formula, FalseF):
        return TrueF()
    if isinstance(formula, Not):
        return formula.arg
    if isinstance(formula, Cmp):
        return Cmp(_NEGATED_CMP[formula.op], formula.lhs, formula.rhs)
    return Not(formula)


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negations only on atoms, no =>/<=>.

    Quantifiers are retained (the grounding layer expands them).
    """
    if isinstance(formula, (TrueF, FalseF, Atom, Cmp)):
        return formula
    if isinstance(formula, And):
        return conj(to_nnf(a) for a in formula.args)
    if isinstance(formula, Or):
        return disj(to_nnf(a) for a in formula.args)
    if isinstance(formula, Implies):
        return disj((to_nnf(Not(formula.lhs)), to_nnf(formula.rhs)))
    if isinstance(formula, Iff):
        return conj(
            (
                to_nnf(Implies(formula.lhs, formula.rhs)),
                to_nnf(Implies(formula.rhs, formula.lhs)),
            )
        )
    if isinstance(formula, ForAll):
        return ForAll(formula.vars, to_nnf(formula.body))
    if isinstance(formula, Exists):
        return Exists(formula.vars, to_nnf(formula.body))
    if isinstance(formula, Not):
        inner = formula.arg
        if isinstance(inner, TrueF):
            return FalseF()
        if isinstance(inner, FalseF):
            return TrueF()
        if isinstance(inner, Atom):
            return formula
        if isinstance(inner, Cmp):
            return Cmp(_NEGATED_CMP[inner.op], inner.lhs, inner.rhs)
        if isinstance(inner, Not):
            return to_nnf(inner.arg)
        if isinstance(inner, And):
            return disj(to_nnf(Not(a)) for a in inner.args)
        if isinstance(inner, Or):
            return conj(to_nnf(Not(a)) for a in inner.args)
        if isinstance(inner, Implies):
            return conj((to_nnf(inner.lhs), to_nnf(Not(inner.rhs))))
        if isinstance(inner, Iff):
            return to_nnf(
                Or(
                    (
                        And((inner.lhs, Not(inner.rhs))),
                        And((Not(inner.lhs), inner.rhs)),
                    )
                )
            )
        if isinstance(inner, ForAll):
            return Exists(inner.vars, to_nnf(Not(inner.body)))
        if isinstance(inner, Exists):
            return ForAll(inner.vars, to_nnf(Not(inner.body)))
    raise TypeError(f"unknown formula node {formula!r}")


def simplify(formula: Formula) -> Formula:
    """Constant-fold and flatten nested conjunctions/disjunctions."""
    if isinstance(formula, (TrueF, FalseF, Atom, Cmp)):
        if isinstance(formula, Cmp):
            lhs, rhs = formula.lhs, formula.rhs
            if isinstance(lhs, IntConst) and isinstance(rhs, IntConst):
                result = _eval_cmp(formula.op, lhs.value, rhs.value)
                return TrueF() if result else FalseF()
        return formula
    if isinstance(formula, Not):
        inner = simplify(formula.arg)
        if isinstance(inner, TrueF):
            return FalseF()
        if isinstance(inner, FalseF):
            return TrueF()
        if isinstance(inner, Not):
            return inner.arg
        return Not(inner)
    if isinstance(formula, And):
        flat: list[Formula] = []
        for a in formula.args:
            s = simplify(a)
            if isinstance(s, And):
                flat.extend(s.args)
            else:
                flat.append(s)
        return conj(flat)
    if isinstance(formula, Or):
        flat = []
        for a in formula.args:
            s = simplify(a)
            if isinstance(s, Or):
                flat.extend(s.args)
            else:
                flat.append(s)
        return disj(flat)
    if isinstance(formula, Implies):
        lhs, rhs = simplify(formula.lhs), simplify(formula.rhs)
        if isinstance(lhs, FalseF) or isinstance(rhs, TrueF):
            return TrueF()
        if isinstance(lhs, TrueF):
            return rhs
        if isinstance(rhs, FalseF):
            return simplify(Not(lhs))
        return Implies(lhs, rhs)
    if isinstance(formula, Iff):
        lhs, rhs = simplify(formula.lhs), simplify(formula.rhs)
        if isinstance(lhs, TrueF):
            return rhs
        if isinstance(rhs, TrueF):
            return lhs
        if isinstance(lhs, FalseF):
            return simplify(Not(rhs))
        if isinstance(rhs, FalseF):
            return simplify(Not(lhs))
        return Iff(lhs, rhs)
    if isinstance(formula, (ForAll, Exists)):
        body = simplify(formula.body)
        if isinstance(body, (TrueF, FalseF)):
            return body
        return type(formula)(formula.vars, body)
    raise TypeError(f"unknown formula node {formula!r}")


def _eval_cmp(op: str, a: int, b: int) -> bool:
    if op == "<=":
        return a <= b
    if op == "<":
        return a < b
    if op == ">=":
        return a >= b
    if op == ">":
        return a > b
    if op == "==":
        return a == b
    if op == "!=":
        return a != b
    raise ValueError(op)
