"""First-order logic substrate used by the IPA analysis.

This package provides:

- :mod:`repro.logic.ast` -- sorts, terms and formula nodes;
- :mod:`repro.logic.parser` -- a parser for the paper's invariant language
  (``forall(Player: p, Tournament: t) :- enrolled(p, t) => player(p) and
  tournament(t)``);
- :mod:`repro.logic.transform` -- substitution, negation normal form,
  simplification;
- :mod:`repro.logic.grounding` -- bounded-domain quantifier elimination,
  turning first-order formulas into propositional ones for the SAT solver;
- :mod:`repro.logic.pretty` -- human-readable formula rendering.
"""

from repro.logic.ast import (
    Add,
    And,
    Atom,
    Card,
    Cmp,
    Const,
    Exists,
    FalseF,
    ForAll,
    Formula,
    Iff,
    Implies,
    IntConst,
    Not,
    NumPred,
    NumTerm,
    Or,
    Param,
    PredicateDecl,
    Sort,
    Term,
    TrueF,
    Var,
    Wildcard,
)
from repro.logic.parser import parse_formula, parse_invariant
from repro.logic.pretty import pretty
from repro.logic.transform import (
    free_vars,
    negate,
    simplify,
    substitute,
    to_nnf,
)

__all__ = [
    "Add",
    "And",
    "Atom",
    "Card",
    "Cmp",
    "Const",
    "Exists",
    "FalseF",
    "ForAll",
    "Formula",
    "Iff",
    "Implies",
    "IntConst",
    "Not",
    "NumPred",
    "NumTerm",
    "Or",
    "Param",
    "PredicateDecl",
    "Sort",
    "Term",
    "TrueF",
    "Var",
    "Wildcard",
    "free_vars",
    "negate",
    "parse_formula",
    "parse_invariant",
    "pretty",
    "simplify",
    "substitute",
    "to_nnf",
]
