"""Human-readable rendering of formulas.

``str()`` on AST nodes already produces readable output; :func:`pretty`
additionally minimises parentheses and renders quantifier blocks the way
the paper writes them.  Used by the analysis report generator.
"""

from __future__ import annotations

from repro.logic.ast import (
    And,
    Atom,
    Cmp,
    Exists,
    FalseF,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TrueF,
)

# Binding strength, loosest first.  Used to decide parenthesisation.
_LEVELS = {
    ForAll: 0,
    Exists: 0,
    Iff: 1,
    Implies: 2,
    Or: 3,
    And: 4,
    Not: 5,
}
_ATOM_LEVEL = 6


def _level(formula: Formula) -> int:
    return _LEVELS.get(type(formula), _ATOM_LEVEL)


def pretty(formula: Formula, _parent_level: int = 0) -> str:
    """Render ``formula`` with minimal parentheses."""
    level = _level(formula)
    text = _render(formula, level)
    if level < _parent_level:
        return f"({text})"
    return text


def _render(formula: Formula, level: int) -> str:
    if isinstance(formula, (TrueF, FalseF, Atom, Cmp)):
        return str(formula)
    if isinstance(formula, Not):
        return f"not {pretty(formula.arg, level + 1)}"
    if isinstance(formula, And):
        return " and ".join(pretty(a, level + 1) for a in formula.args)
    if isinstance(formula, Or):
        return " or ".join(pretty(a, level + 1) for a in formula.args)
    if isinstance(formula, Implies):
        return (
            f"{pretty(formula.lhs, level + 1)} => "
            f"{pretty(formula.rhs, level)}"
        )
    if isinstance(formula, Iff):
        return (
            f"{pretty(formula.lhs, level + 1)} <=> "
            f"{pretty(formula.rhs, level + 1)}"
        )
    if isinstance(formula, (ForAll, Exists)):
        keyword = "forall" if isinstance(formula, ForAll) else "exists"
        groups: list[str] = []
        last_sort = None
        for var in formula.vars:
            if var.sort == last_sort:
                groups[-1] += f", {var.name}"
            else:
                groups.append(f"{var.sort.name}: {var.name}")
                last_sort = var.sort
        binders = ", ".join(groups)
        return f"{keyword}({binders}) :- {pretty(formula.body, 1)}"
    raise TypeError(f"unknown formula node {formula!r}")
