#!/usr/bin/env python3
"""Twitter strategies: Add-wins vs Rem-wins conflict resolution (§5.2.3).

When a user is removed concurrently with one of their tweets being
posted or retweeted, the two strategies disagree about who should win:

- **Add-wins** restores the user (the tweet survives, the removal is
  undone) -- the tweeting operations carry the extra restore updates;
- **Rem-wins** purges the user's history, and timeline *reads* lazily
  hide tweets that were removed concurrently (a compensation).

This script replays the same race under both strategies and shows the
divergent -- but in both cases invariant-preserving -- outcomes.

Run with::

    python examples/twitter_strategies.py
"""

from repro.apps.common import Variant
from repro.apps.twitter import TwitterApp, twitter_registry
from repro.sim.events import Simulator
from repro.sim.latency import EU_WEST, REGIONS, US_EAST, US_WEST
from repro.store.cluster import Cluster


def race(variant: Variant) -> None:
    sim = Simulator()
    cluster = Cluster(sim, twitter_registry(variant))
    app = TwitterApp(cluster, variant)
    app.setup(["alice", "bob"], US_EAST)
    app.follow(US_EAST, "bob", "alice", lambda _op: None)
    sim.run(until=sim.now + 2_000.0)

    # The race: alice tweets at us-west while eu-west removes her.
    app.tweet(US_WEST, "alice", "w1", lambda _op: None)
    app.rem_user(EU_WEST, "alice", lambda _op: None)
    sim.run(until=sim.now + 2_000.0)

    # A timeline read (which compensates under rem-wins).
    app.timeline(US_EAST, "bob", lambda _op: None)
    sim.run(until=sim.now + 2_000.0)

    print(f"--- {variant.value} ---")
    for region in REGIONS:
        replica = cluster.replica(region)
        users = sorted(replica.get_object("users").value())
        timeline = sorted(replica.get_object("timeline:bob").value())
        print(
            f"  {region:8s} users={users!s:20s} "
            f"bob's timeline={timeline}"
        )
    print(f"  dangling references: {app.count_violations(US_EAST)}")
    print()


def main() -> None:
    print("The race: tweet(alice, w1) || rem_user(alice)\n")
    race(Variant.CAUSAL)
    race(Variant.ADD_WINS)
    race(Variant.REM_WINS)
    print(
        "Causal leaves bob's timeline referencing a removed user;\n"
        "Add-wins resurrects alice so the reference stays valid;\n"
        "Rem-wins removes both alice and her tweet everywhere."
    )


if __name__ == "__main__":
    main()
