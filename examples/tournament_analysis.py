#!/usr/bin/env python3
"""Full Tournament analysis + a live replay of the repaired application.

Part 1 runs the IPA tool on the complete Figure 1 specification and
prints the full report: every conflict found, the chosen repairs, the
convergence-rule changes, and the capacity compensation.

Part 2 replays the Figure 2 race -- ``enroll(p, t)`` concurrent with
``rem_tourn(t)`` -- on the simulated geo-replicated store, first with
the unmodified application (watch the invariant break), then with the
IPA-modified one (watch it hold).

Run with::

    python examples/tournament_analysis.py
"""

from repro.analysis import run_ipa
from repro.analysis.report import render_result
from repro.apps.common import Variant
from repro.apps.tournament import (
    TournamentApp,
    tournament_registry,
    tournament_spec,
)
from repro.sim.events import Simulator
from repro.sim.latency import EU_WEST, REGIONS, US_EAST, US_WEST
from repro.store.cluster import Cluster


def analyse() -> None:
    print("=" * 70)
    print("Part 1: the IPA analysis of the full Tournament specification")
    print("=" * 70)
    spec = tournament_spec()
    result = run_ipa(spec)
    print(render_result(result))
    print()


def replay(variant: Variant) -> None:
    sim = Simulator()
    cluster = Cluster(sim, tournament_registry(variant))
    app = TournamentApp(cluster, variant)
    app.setup(["p1", "p2"], ["t1"], US_EAST)

    # The Figure 2 race: concurrent enroll and rem_tourn.
    app.enroll(US_WEST, "p1", "t1", lambda _op: None)
    app.rem_tourn(EU_WEST, "t1", lambda _op: None)
    sim.run(until=sim.now + 2_000.0)

    print(f"--- {variant.value} variant after the race ---")
    for region in REGIONS:
        replica = cluster.replica(region)
        enrolled = sorted(replica.get_object("enrolled").value())
        tournaments = sorted(replica.get_object("tournaments").value())
        violations = app.count_violations(region)
        print(
            f"  {region:8s} enrolled={enrolled!s:24s} "
            f"tournaments={tournaments!s:8s} violations={violations}"
        )
    print()


def main() -> None:
    analyse()
    print("=" * 70)
    print("Part 2: replaying the Figure 2 race on the replicated store")
    print("=" * 70)
    replay(Variant.CAUSAL)
    replay(Variant.IPA)
    print(
        "The causal variant converges to a state with a dangling\n"
        "enrolment; the IPA variant's extra effects keep every replica\n"
        "invariant-valid without any coordination."
    )


if __name__ == "__main__":
    main()
