#!/usr/bin/env python3
"""Quickstart: make a small application invariant-preserving with IPA.

This walks the three steps of the IPA recipe (§3 of the paper) on the
running example:

1. specify the application (invariants + operation effects);
2. run the analysis: detect the conflicting pair, inspect the proposed
   resolutions, let the tool pick one;
3. read the patch to apply to the implementation.

Run with::

    python examples/quickstart.py
"""

from repro.analysis import ConflictChecker, run_ipa
from repro.analysis.report import render_patch, render_resolutions
from repro.analysis.repair import repair_conflict
from repro.spec import SpecBuilder


def build_spec():
    """Step 1 -- the specification (compare to the paper's Figure 1)."""
    b = SpecBuilder("tournament-lite")
    b.predicate("player", "Player")
    b.predicate("tournament", "Tournament")
    b.predicate("enrolled", "Player", "Tournament")
    b.invariant(
        "forall(Player: p, Tournament: t) :- "
        "enrolled(p, t) => player(p) and tournament(t)"
    )
    b.operation("add_player", "Player: p", true=["player(p)"])
    b.operation("add_tourn", "Tournament: t", true=["tournament(t)"])
    b.operation("rem_tourn", "Tournament: t", false=["tournament(t)"])
    b.operation(
        "enroll", "Player: p, Tournament: t", true=["enrolled(p, t)"]
    )
    return b.build()


def main() -> None:
    spec = build_spec()
    print("=== Step 1: the specification ===")
    print(spec.describe())

    print("\n=== Step 2: conflict detection ===")
    checker = ConflictChecker(spec)
    witness = checker.find_first()
    print(witness.describe())

    print("\n=== Step 2 (cont.): proposed resolutions ===")
    solutions = repair_conflict(spec, checker, witness)
    print(render_resolutions(solutions))

    print("\n=== Step 3: the patch ===")
    result = run_ipa(spec)
    print(render_patch(spec, result.modified))

    print("\n=== verification ===")
    remaining = ConflictChecker(result.modified).find_conflicts()
    print(f"conflicts remaining after patch: {len(remaining)}")
    assert not remaining


if __name__ == "__main__":
    main()
