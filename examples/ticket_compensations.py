#!/usr/bin/env python3
"""Ticket oversell and the Compensation Set CRDT (§3.4, §4.2.2).

A capacity bound cannot be preserved eagerly with acceptable semantics
(the repair would cancel a sale on every purchase).  Instead the IPA
variant attaches the bound to the sold-tickets set itself: any read
that observes an oversold state deterministically cancels the excess
tickets and reimburses the buyers -- commutative, idempotent and
monotonic, so replicas repairing independently still converge.

Run with::

    python examples/ticket_compensations.py
"""

from repro.apps.common import Variant
from repro.apps.ticket import TicketApp, ticket_registry
from repro.sim.events import Simulator
from repro.sim.latency import REGIONS, US_EAST
from repro.store.cluster import Cluster

CAPACITY = 4


def sell_out_concurrently(variant: Variant):
    sim = Simulator()
    cluster = Cluster(sim, ticket_registry(variant, capacity=CAPACITY))
    app = TicketApp(cluster, variant, capacity=CAPACITY)
    app.setup(["gig"], US_EAST)

    # Each region sees plenty of local stock and sells 2 tickets
    # concurrently: 6 sold against a capacity of 4.
    serial = 0
    for region in REGIONS:
        for _ in range(2):
            serial += 1
            app.buy_ticket(
                region, f"{region}-ticket{serial}", "gig",
                lambda _op: None,
            )
    sim.run(until=sim.now + 2_000.0)
    return sim, cluster, app


def report(cluster, app, label) -> None:
    print(f"--- {label} ---")
    for region in REGIONS:
        sold = cluster.replica(region).get_object("sold:gig")
        raw = sorted(
            sold.raw_value() if hasattr(sold, "raw_value")
            else sold.value()
        )
        print(
            f"  {region:8s} raw sold={len(raw)} "
            f"oversold={'YES' if len(raw) > CAPACITY else 'no '} "
            f"observed violations={app.count_violations(region)}"
        )
    print()


def main() -> None:
    print(f"Event capacity: {CAPACITY}; three regions each sell 2 "
          "tickets concurrently.\n")

    _sim, cluster, app = sell_out_concurrently(Variant.CAUSAL)
    report(cluster, app, "causal: the raw state IS the observed state")

    sim, cluster, app = sell_out_concurrently(Variant.IPA)
    report(cluster, app, "IPA before any read (raw oversold, "
           "observed view already repaired)")

    # One read anywhere commits the compensation for everyone.
    app.view_event(US_EAST, "gig", lambda _op: None)
    sim.run(until=sim.now + 2_000.0)
    report(cluster, app, "IPA after one compensating read")
    print(
        f"reimbursed buyers: {app.reimbursements(US_EAST)} "
        "(the cancelled tickets)"
    )


if __name__ == "__main__":
    main()
