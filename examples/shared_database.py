#!/usr/bin/env python3
"""Two applications, one database — the fully mechanical IPA pipeline.

§5.1.4 of the paper: when several applications share a database, the
analysis needs one combined specification, or conflicts between
*different* applications go unnoticed.  This example:

1. specifies an end-user app (enrolments) and a separate admin app
   (tournament management), each individually conflict-free;
2. merges them and finds the cross-application conflict;
3. lets IPA repair the merged specification;
4. runs the patched specification **directly** on the simulated
   geo-replicated store through the generic executor
   (:mod:`repro.runtime`) -- no hand-written application code -- and
   audits every replica with the same invariant formulas the analysis
   used.

Run with::

    python examples/shared_database.py
"""

from repro.analysis import ConflictChecker, run_ipa
from repro.analysis.report import render_patch
from repro.runtime import SpecExecutor, registry_for_spec
from repro.sim import Simulator
from repro.sim.latency import EU_WEST, REGIONS, US_EAST, US_WEST
from repro.spec import SpecBuilder, merge_specs
from repro.store import Cluster


def enrolment_app():
    b = SpecBuilder("enrolments")
    b.predicate("player", "Player")
    b.predicate("tournament", "Tournament")
    b.predicate("enrolled", "Player", "Tournament")
    b.invariant(
        "forall(Player: p, Tournament: t) :- "
        "enrolled(p, t) => player(p) and tournament(t)"
    )
    b.operation("add_player", "Player: p", true=["player(p)"])
    b.operation(
        "enroll", "Player: p, Tournament: t", true=["enrolled(p, t)"]
    )
    return b.build()


def admin_app():
    b = SpecBuilder("admin")
    b.predicate("tournament", "Tournament")
    b.operation("add_tourn", "Tournament: t", true=["tournament(t)"])
    b.operation("rem_tourn", "Tournament: t", false=["tournament(t)"])
    return b.build()


def main() -> None:
    enrolments, admin = enrolment_app(), admin_app()
    print("per-application analysis:")
    for spec in (enrolments, admin):
        count = len(ConflictChecker(spec).find_conflicts())
        print(f"  {spec.name:12s} conflicting pairs: {count}")

    combined = merge_specs("shared-db", enrolments, admin)
    conflicts = ConflictChecker(combined).find_conflicts()
    print(f"\ncombined analysis: {len(conflicts)} conflicting pair(s)")
    for witness in conflicts:
        print(f"  {witness.op1} || {witness.op2}")

    result = run_ipa(combined)
    print("\npatch for the combined specification:")
    print(render_patch(combined, result.modified))

    print("\nrunning the patched spec mechanically on the store...")
    sim = Simulator()
    cluster = Cluster(sim, registry_for_spec(result.modified))
    executor = SpecExecutor(
        result.modified, cluster,
        compensations=result.compensations,
        original_spec=result.original,
    )
    executor.execute(US_EAST, "add_player", {"p": "ada"})
    executor.execute(US_EAST, "add_tourn", {"t": "open"})
    sim.run(until=sim.now + 2_000.0)
    # The cross-application race.
    executor.execute(US_WEST, "enroll", {"p": "ada", "t": "open"})
    executor.execute(EU_WEST, "rem_tourn", {"t": "open"})
    sim.run(until=sim.now + 2_000.0)

    for region in REGIONS:
        violated = executor.audit(region)
        print(f"  {region:8s} violated invariants: {violated or 'none'}")
    assert all(not executor.audit(region) for region in REGIONS)
    print("\nthe cross-application conflict is repaired end to end.")


if __name__ == "__main__":
    main()
