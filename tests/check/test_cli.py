"""The ``repro check`` / ``repro simulate --fail-on-violation`` CLI.

Exit-code contract: ``check`` exits 1 when the sweep finds a
violation (0 otherwise); ``--expect violation`` / ``--expect clean``
invert that for CI jobs; ``--replay`` exits 0 iff the recorded verdict
reproduces; ``simulate --fail-on-violation`` exits 1 iff an oracle
fires on the finished run.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


def test_check_causal_finds_violations_and_exits_nonzero(capsys) -> None:
    code = main(["check", "tournament", "--trials", "2", "--seed", "11",
                 "--no-shrink"])
    out = capsys.readouterr().out
    assert code == 1
    assert "violating" in out


def test_check_expect_violation_inverts_exit_code() -> None:
    assert main(["check", "tournament", "--trials", "1", "--seed", "11",
                 "--no-shrink", "--expect", "violation"]) == 0


def test_check_ipa_expect_clean(capsys) -> None:
    assert main(["check", "tournament", "--config", "IPA", "--trials", "2",
                 "--seed", "11", "--expect", "clean"]) == 0


def test_check_shrinks_and_writes_replayable_repro(tmp_path, capsys) -> None:
    code = main(["check", "ticket", "--trials", "2", "--seed", "11",
                 "--out", str(tmp_path), "--json",
                 "--expect", "violation"])
    report = json.loads(capsys.readouterr().out)
    assert code == 0
    assert report["violating"] >= 1
    assert report["shrink"]["op_reduction"] >= 0.5
    repro_file = report["repro_file"]

    code = main(["check", "--replay", repro_file, "--json"])
    replay = json.loads(capsys.readouterr().out)
    assert code == 0
    assert replay["reproduced"] is True
    # The shrunk repro preserves (at least) the shrink target, which
    # is one of the original failure's verdict keys.
    assert replay["verdict"]
    original = [tuple(k) for k in report["failure"]["verdict"]]
    assert all(tuple(k) in original for k in replay["verdict"])


def test_check_requires_app_or_replay(capsys) -> None:
    assert main(["check"]) == 2
    assert "APP is required" in capsys.readouterr().err


def test_check_unknown_app_is_a_usage_error(capsys) -> None:
    assert main(["check", "nonesuch", "--trials", "1"]) == 2
    assert "unknown application" in capsys.readouterr().err


def test_replay_missing_file_is_a_usage_error(capsys) -> None:
    assert main(["check", "--replay", "/nonexistent/repro.json"]) == 2


@pytest.mark.parametrize(
    "config,seed,expected",
    [
        # Strong serialises every write at the primary: always clean.
        ("Strong", 23, 0),
        # This Causal run races a remove under load and leaves a
        # dangling finished-marker (found by seed probing; the run is
        # deterministic, so the verdict is stable).
        ("Causal", 7, 1),
    ],
)
def test_simulate_fail_on_violation_exit_codes(
    config: str, seed: int, expected: int, capsys
) -> None:
    code = main([
        "simulate", "--config", config, "--seed", str(seed),
        "--clients", "48" if config == "Causal" else "4",
        "--duration-ms", "4000" if config == "Causal" else "2000",
        "--think-ms", "0" if config == "Causal" else "100",
        "--fail-on-violation",
    ])
    out = capsys.readouterr().out
    assert code == expected
    if expected:
        assert "ORACLE VIOLATIONS" in out
    else:
        assert "oracles: clean" in out
