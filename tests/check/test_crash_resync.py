"""Satellite: crash mid-digest-sync, then snapshot-fallback resync.

A replica crashes while anti-entropy rounds are in flight; while it is
down the survivors commit and truncate their logs past the crashed
replica's digest, so plain retransmission cannot close the gap.  On
recovery the sync answer falls back to a full snapshot; the cluster
must still converge and satisfy the convergence oracle.
"""

from __future__ import annotations

from repro.apps.common import Variant
from repro.check.apps import TournamentAdapter
from repro.check.oracles import ConvergenceOracle
from repro.sim.events import Simulator
from repro.sim.latency import REGIONS
from repro.store.cluster import Cluster, ConsistencyMode


def test_snapshot_fallback_resync_passes_convergence_oracle() -> None:
    adapter = TournamentAdapter()
    params = adapter.defaults()
    sim = Simulator()
    cluster = Cluster(
        sim,
        adapter.registry(Variant.CAUSAL, params),
        regions=REGIONS,
        mode=ConsistencyMode.CAUSAL,
    )
    engine = cluster.start_antientropy(interval_ms=100.0, seed=5)
    app = adapter.make_app(cluster, Variant.CAUSAL, params)
    adapter.setup(app, params, REGIONS[0])
    assert cluster.run_until_converged() is not None

    # Crash between anti-entropy ticks: rounds addressed to (and
    # outstanding from) eu-west die mid-exchange and back off.
    cluster.crash_region("eu-west")
    done = lambda _label: None
    adapter.dispatch(app, "us-east", "enroll", ("p0", "t0"), done)
    adapter.dispatch(app, "us-west", "enroll", ("p1", "t1"), done)
    sim.run(until=sim.now + 1_000.0)
    adapter.dispatch(app, "us-east", "begin", ("t0",), done)
    sim.run(until=sim.now + 1_000.0)
    assert engine.sync_timeouts >= 1  # the crash interrupted live rounds

    # The survivors checkpoint and truncate everything they have
    # applied: the crashed replica's vector now predates every log
    # base, so records alone cannot resynchronise it.
    for region in ("us-east", "us-west"):
        replica = cluster.replica(region)
        replica.compact_log(replica.vv, min_records=1)

    cluster.recover_region("eu-west")
    assert cluster.run_until_converged(timeout_ms=30_000.0) is not None
    assert engine.snapshots_installed >= 1
    assert cluster.fault_stats()["store.antientropy.snapshots_installed"] >= 1
    assert ConvergenceOracle().check(cluster) == []
