"""Counterexample shrinking (repro.check.shrink).

The acceptance bar: delta debugging reduces a real explorer failure by
at least half its client operations while preserving the oracle
verdict, and the whole minimisation is deterministic.
"""

from __future__ import annotations

import pytest

from repro.check import build_trial, run_trial, shrink
from repro.errors import CheckError


@pytest.fixture(scope="module")
def failing_spec():
    spec = build_trial("tournament", "Causal", 11, 0)
    assert run_trial(spec).violations
    return spec


def test_shrink_halves_the_trace_and_keeps_the_verdict(failing_spec) -> None:
    result = shrink(failing_spec)
    assert result.op_reduction >= 0.5, result.summary()
    assert result.target <= result.result.verdict_keys
    # The shrunk spec replays stand-alone to the same verdict.
    replay = run_trial(result.shrunk)
    assert result.target <= replay.verdict_keys


def test_shrink_is_deterministic(failing_spec) -> None:
    first = shrink(failing_spec)
    second = shrink(failing_spec)
    assert first.shrunk == second.shrunk
    assert first.runs == second.runs


def test_shrink_prunes_faults_and_regions() -> None:
    # Index 3 is the partition-crash family: the minimal tournament
    # counterexample needs neither the faults nor the third region.
    spec = build_trial("tournament", "Causal", 11, 3)
    assert run_trial(spec).violations
    result = shrink(spec)
    plan = result.shrunk.plan
    assert not plan.crashes
    assert not plan.partitions
    assert plan.drop == plan.duplicate == 0.0
    assert len(result.shrunk.regions) == 2


def test_shrink_refuses_a_clean_trial() -> None:
    spec = build_trial("tournament", "IPA", 11, 0)
    assert not run_trial(spec).violations
    with pytest.raises(CheckError):
        shrink(spec)


def test_explicit_target_must_fire() -> None:
    spec = build_trial("tournament", "Causal", 11, 0)
    with pytest.raises(CheckError):
        shrink(spec, target=frozenset({("invariant", "nonesuch")}))
