"""Satellite: the determinism audit.

Identical specs must produce byte-identical outcomes -- replica
digests, per-operation completion counts, fault statistics, and the
fingerprint that hashes them all -- run-to-run and process-to-process
(the subprocess test varies PYTHONHASHSEED to catch hash-order
dependence).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.check import build_trial, explore, run_trial, write_repro

#: One trial per fault-plan family (index selects the family).
FAMILY_INDICES = range(5)


@pytest.mark.parametrize("index", FAMILY_INDICES)
def test_identical_specs_produce_identical_outcomes(index: int) -> None:
    spec = build_trial("tournament", "Causal", 11, index)
    first = run_trial(spec)
    second = run_trial(spec)
    assert first.digests == second.digests
    assert first.completions == second.completions
    assert first.fault_stats == second.fault_stats
    assert first.converged_ms == second.converged_ms
    assert [v.to_dict() for v in first.violations] == [
        v.to_dict() for v in second.violations
    ]
    assert first.fingerprint == second.fingerprint


def test_exploration_sequence_is_deterministic() -> None:
    first = explore("twitter", "Causal", trials=4, seed=17)
    second = explore("twitter", "Causal", trials=4, seed=17)
    strip = lambda t: (t.index, t.seed, t.plan_kind, t.n_ops,
                       t.n_violations, t.converged)
    assert [strip(t) for t in first.trials] == [
        strip(t) for t in second.trials
    ]
    assert [f.fingerprint for f in first.failures] == [
        f.fingerprint for f in second.failures
    ]


def test_replay_is_deterministic_across_processes(tmp_path) -> None:
    """`check --replay --json` prints identical bytes under different
    hash seeds: no dict-order or salted-hash dependence anywhere."""
    spec = build_trial("tpcw", "Causal", 11, 0)
    result = run_trial(spec)
    assert result.violations
    path = tmp_path / "repro.json"
    write_repro(str(path), spec, result)

    outputs = []
    for hash_seed in ("0", "4242"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "check",
             "--replay", str(path), "--json"],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)))),
        )
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
