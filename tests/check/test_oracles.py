"""Unit tests for the runtime oracles (repro.check.oracles)."""

from __future__ import annotations

from repro.apps.common import Variant
from repro.apps.tournament import tournament_spec
from repro.check.apps import TournamentAdapter
from repro.check.oracles import (
    BoundProbe,
    CompensationDebtOracle,
    ConvergenceOracle,
    Interpretation,
    InvariantOracle,
    SessionTracker,
)
from repro.sim.events import Simulator
from repro.sim.latency import REGIONS
from repro.store.cluster import Cluster, ConsistencyMode


def _interp(**overrides) -> Interpretation:
    """A consistent little tournament model, overridable per test."""
    relations = {
        "player": {("p0",), ("p1",)},
        "tournament": {("t0",)},
        "enrolled": {("p0", "t0")},
        "active": set(),
        "finished": set(),
        "inMatch": set(),
    }
    relations.update(overrides)
    return Interpretation(relations=relations)


class TestInvariantOracle:
    def setup_method(self) -> None:
        self.oracle = InvariantOracle(tournament_spec(capacity=3))

    def test_consistent_state_is_clean(self) -> None:
        assert self.oracle.check(_interp(), "us-east") == []

    def test_dangling_enrollment_fires_with_witness(self) -> None:
        interp = _interp(enrolled={("p0", "t0"), ("p9", "t0")})
        found = self.oracle.check(interp, "us-east")
        assert len(found) == 1
        violation = found[0]
        assert violation.oracle == "invariant"
        assert violation.region == "us-east"
        assert ("p", "p9") in violation.witness
        assert ("t", "t0") in violation.witness

    def test_capacity_burst_fires(self) -> None:
        players = {(f"p{i}",) for i in range(5)}
        interp = _interp(
            player=players,
            enrolled={(f"p{i}", "t0") for i in range(5)},
        )
        found = self.oracle.check(interp, "eu-west")
        assert any("Capacity" in v.name for v in found)

    def test_active_and_finished_is_contradictory(self) -> None:
        interp = _interp(active={("t0",)}, finished={("t0",)})
        found = self.oracle.check(interp, "us-east")
        assert any("active" in v.name and "finished" in v.name for v in found)


class TestSessionTracker:
    def test_monotonic_chain_is_clean(self) -> None:
        tracker = SessionTracker()
        tracker.observe("us-east#0", "us-east", {"us-east": 1})
        tracker.observe("us-east#0", "us-east", {"us-east": 2, "eu-west": 1})
        assert tracker.check() == []

    def test_vector_regression_fires(self) -> None:
        tracker = SessionTracker()
        tracker.observe("us-east#0", "us-east", {"us-east": 3})
        tracker.observe("us-east#0", "us-east", {"us-east": 1})
        found = tracker.check()
        assert len(found) == 1
        assert found[0].oracle == "session"
        assert found[0].name == "us-east#0"
        assert "us-east" in found[0].detail

    def test_sessions_are_independent(self) -> None:
        tracker = SessionTracker()
        tracker.observe("us-east#0", "us-east", {"us-east": 3})
        # A different session starting from scratch is not a regression.
        tracker.observe("us-west#0", "us-west", {"us-east": 1})
        assert tracker.check() == []


class TestCompensationDebtOracle:
    def test_observed_breach_fires_regardless_of_mode(self) -> None:
        probe = BoundProbe(
            key="capacity:t0", raw=5, observed=5, bound=3, op="<="
        )
        for compensated in (False, True):
            found = CompensationDebtOracle().check(
                [probe], "us-east", compensated
            )
            assert len(found) == 1
            assert found[0].oracle == "compensation-debt"

    def test_covered_overdraft_is_clean(self) -> None:
        probe = BoundProbe(
            key="capacity:t0", raw=5, observed=3, bound=3, op="<=", covered=2
        )
        assert CompensationDebtOracle().check([probe], "us-east", True) == []

    def test_uncovered_overdraft_fires_under_compensation(self) -> None:
        probe = BoundProbe(
            key="capacity:t0", raw=5, observed=3, bound=3, op="<=", covered=1
        )
        found = CompensationDebtOracle().check([probe], "us-east", True)
        assert len(found) == 1
        assert "overdraft" in found[0].detail
        # The Causal configuration only judges the observed view.
        assert CompensationDebtOracle().check([probe], "us-east", False) == []

    def test_floor_bound_direction(self) -> None:
        probe = BoundProbe(
            key="stock:i0", raw=-1, observed=-1, bound=0, op=">="
        )
        found = CompensationDebtOracle().check([probe], "us-east", False)
        assert len(found) == 1


class TestConvergenceOracle:
    def _cluster(self):
        adapter = TournamentAdapter()
        params = adapter.defaults()
        sim = Simulator()
        cluster = Cluster(
            sim,
            adapter.registry(Variant.CAUSAL, params),
            regions=REGIONS,
            mode=ConsistencyMode.CAUSAL,
        )
        app = adapter.make_app(cluster, Variant.CAUSAL, params)
        adapter.setup(app, params, REGIONS[0])
        cluster.flush_replication()
        assert cluster.run_until_converged() is not None
        return sim, cluster, adapter, app

    def test_converged_cluster_is_clean(self) -> None:
        _, cluster, _, _ = self._cluster()
        assert ConvergenceOracle().check(cluster) == []

    def test_divergence_fires(self) -> None:
        sim, cluster, adapter, app = self._cluster()
        # eu-west sleeps through a commit; without anti-entropy the
        # lost replication message is never healed.
        cluster.crash_region("eu-west")
        adapter.dispatch(app, "us-east", "enroll", ("p0", "t0"), lambda _: None)
        sim.run(until=sim.now + 500.0)
        cluster.flush_replication()
        sim.run(until=sim.now + 500.0)
        cluster.recover_region("eu-west")
        found = ConvergenceOracle().check(cluster)
        assert any(v.name == "state-digest" for v in found)
        assert any(v.name == "version-vectors" for v in found)
