"""Trial harness and explorer behaviour (repro.check.harness/explorer).

The core acceptance property lives here: within the default smoke
budget the explorer finds at least one invariant violation per
application under plain Causal, and none under the IPA repairs or
Strong consistency.
"""

from __future__ import annotations

import pytest

from repro.check import (
    ADAPTERS,
    build_trial,
    explore,
    load_repro,
    run_trial,
    write_repro,
)
from repro.check.harness import TrialSpec
from repro.errors import CheckError

APPS = sorted(ADAPTERS)
SMOKE_SEED = 11
SMOKE_TRIALS = 5


@pytest.mark.parametrize("app", APPS)
def test_causal_finds_an_invariant_violation(app: str) -> None:
    result = explore(app, "Causal", trials=SMOKE_TRIALS, seed=SMOKE_SEED)
    assert result.violating >= 1, result.summary()
    invariant_findings = [
        v
        for trial in result.failures
        for v in trial.violations
        if v.oracle == "invariant"
    ]
    assert invariant_findings, "violations found but none from invariants"


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("config", ["IPA", "Strong"])
def test_repaired_configs_are_clean(app: str, config: str) -> None:
    result = explore(app, config, trials=SMOKE_TRIALS, seed=SMOKE_SEED)
    assert result.violating == 0, [
        v.describe() for t in result.failures for v in t.violations
    ]


def test_trials_converge_and_complete_ops() -> None:
    for index in range(SMOKE_TRIALS):
        spec = build_trial("tournament", "Causal", SMOKE_SEED, index)
        result = run_trial(spec)
        assert result.converged_ms is not None
        assert result.issued == len(spec.ops)
        completed = sum(result.completions.values())
        assert completed + result.refused == result.issued


def test_spec_round_trips_through_dict() -> None:
    spec = build_trial("ticket", "Causal", SMOKE_SEED, 3)
    assert TrialSpec.from_dict(spec.to_dict()) == spec


def test_spec_schema_is_checked() -> None:
    spec = build_trial("ticket", "Causal", SMOKE_SEED, 0)
    payload = spec.to_dict()
    payload["schema"] = 99
    with pytest.raises(CheckError):
        TrialSpec.from_dict(payload)


def test_unknown_app_and_config_are_rejected() -> None:
    with pytest.raises(CheckError):
        build_trial("nonesuch", "Causal", 1, 0)
    with pytest.raises(CheckError):
        explore("tournament", "Eventual", trials=1)
    with pytest.raises(CheckError):
        run_trial(
            TrialSpec(app="tournament", config="Causal", seed=1,
                      regions=("us-east",))
        )


def test_repro_file_replays_to_the_same_verdict(tmp_path) -> None:
    spec = build_trial("tournament", "Causal", SMOKE_SEED, 0)
    result = run_trial(spec)
    assert result.violations
    path = tmp_path / "repro.json"
    write_repro(str(path), spec, result, meta={"note": "test"})
    loaded_spec, expected = load_repro(str(path))
    assert loaded_spec == spec
    replayed = run_trial(loaded_spec)
    assert replayed.verdict_keys == expected
    assert replayed.fingerprint == result.fingerprint


def test_load_repro_rejects_non_repro_json(tmp_path) -> None:
    path = tmp_path / "not-a-repro.json"
    path.write_text("{}")
    with pytest.raises(CheckError):
        load_repro(str(path))
