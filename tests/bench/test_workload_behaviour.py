"""Workload-class behaviour tests (locality, hot keys, pools)."""

import random

from repro.apps.common import Variant
from repro.bench.configs import (
    CONFIGS,
    TicketWorkload,
    TournamentWorkload,
    TwitterWorkload,
    build_ticket,
    build_tournament,
    build_twitter,
)
from repro.sim.latency import REGIONS
from repro.sim.runner import Client


class TestTournamentLocality:
    def test_high_locality_prefers_region_partition(self):
        config = next(c for c in CONFIGS if c.name == "Causal")
        _sim, app, _wl = build_tournament(config, n_tournaments=9)
        workload = TournamentWorkload(
            app,
            [f"p{i}" for i in range(10)],
            [f"t{i}" for i in range(9)],
            locality=1.0,
        )
        region = REGIONS[0]
        local_pool = set(workload._local[region])
        for _ in range(50):
            assert workload._pick_tournament(region) in local_pool

    def test_zero_locality_spreads_globally(self):
        config = next(c for c in CONFIGS if c.name == "Causal")
        _sim, app, _wl = build_tournament(config, n_tournaments=9)
        workload = TournamentWorkload(
            app,
            [f"p{i}" for i in range(10)],
            [f"t{i}" for i in range(9)],
            locality=0.0,
        )
        picks = {
            workload._pick_tournament(REGIONS[0]) for _ in range(300)
        }
        # With no locality, picks cover (nearly) the whole pool.
        assert len(picks) >= 7

    def test_partitions_cover_all_tournaments(self):
        config = next(c for c in CONFIGS if c.name == "Causal")
        _sim, app, workload = build_tournament(config, n_tournaments=12)
        covered = set()
        for pool in workload._local.values():
            covered.update(pool)
        assert len(covered) == 12


class TestTicketHotEvents:
    def test_event_pool_bounded(self):
        sim, app, workload = build_ticket(Variant.CAUSAL, n_events=10)
        client = Client(0, REGIONS[0])
        for _ in range(600):
            workload.issue(client, lambda _op: None)
            sim.run(until=sim.now + 5.0)
        assert len(workload._events) <= 40

    def test_fresh_events_are_hot(self):
        """Zipf indexing from the end of the pool targets new events."""
        sim, app, workload = build_ticket(Variant.CAUSAL, n_events=20)
        # Force buys only.
        workload._mix = type(workload._mix)({"buy_ticket": 1.0}, seed=1)
        counts: dict[str, int] = {}
        original = app.buy_ticket

        def spy(region, ticket, event, done):
            counts[event] = counts.get(event, 0) + 1
            original(region, ticket, event, done)

        app.buy_ticket = spy
        client = Client(0, REGIONS[0])
        for _ in range(400):
            workload.issue(client, lambda _op: None)
            sim.run(until=sim.now + 5.0)
        hot = max(counts, key=counts.get)
        # The hottest event is near the end of the initial pool.
        assert int(hot[1:]) >= 15


class TestTwitterPools:
    def test_tweet_ids_unique_per_region_sequence(self):
        _sim, app, workload = build_twitter(Variant.CAUSAL, n_users=6)
        ids = {
            workload._new_tweet_id(REGIONS[0]) for _ in range(100)
        }
        assert len(ids) == 100

    def test_recent_tweet_pool_bounded(self):
        sim, app, workload = build_twitter(Variant.CAUSAL, n_users=6)
        workload._mix = type(workload._mix)({"tweet": 1.0}, seed=2)
        client = Client(0, REGIONS[0])
        for _ in range(200):
            workload.issue(client, lambda _op: None)
            sim.run(until=sim.now + 5.0)
        assert len(workload._recent_tweets) <= 64
