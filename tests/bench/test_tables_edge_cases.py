"""Extra table-formatter edge cases."""

from repro.bench.tables import format_series, format_table


class TestCellFormatting:
    def test_floats_rounded_to_two_places(self):
        text = format_table([{"x": 3.14159}])
        assert "3.14" in text

    def test_none_rendered_as_dash(self):
        text = format_table([{"x": None}])
        assert "—" in text

    def test_mixed_width_columns_align(self):
        rows = [
            {"left": "a", "right": 123456},
            {"left": "bbbb", "right": 1},
        ]
        lines = format_table(rows).splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_missing_keys_render_as_dash(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert "—" in text


class TestSeriesFormatting:
    def test_multiple_series_blocks(self):
        text = format_series(
            "t", {"one": [(1, 2)], "two": [(3, 4)]}, ("x", "y")
        )
        assert "[one]" in text and "[two]" in text

    def test_rows_follow_header_order(self):
        text = format_series("t", {"s": [(1, 2.5, "z")]}, ("a", "b", "c"))
        lines = text.splitlines()
        header_line = next(l for l in lines if "a" in l and "b" in l)
        row_line = lines[lines.index(header_line) + 1]
        assert "2.50" in row_line and "z" in row_line
