"""Bench-harness tests: table formatting and tiny experiment smokes.

Full-scale experiment runs live under ``benchmarks/``; these tests only
verify the drivers are wired correctly (tiny parameters, seconds not
minutes).
"""

import pytest

from repro.apps.common import Variant
from repro.bench.configs import (
    CONFIGS,
    TOURNAMENT_MIX,
    build_ticket,
    build_tournament,
    build_twitter,
)
from repro.bench.tables import format_series, format_table
from repro.sim.latency import REGIONS
from repro.sim.runner import run_closed_loop
from repro.sim.workload import OperationMix


class TestTables:
    def test_format_table_alignment(self):
        rows = [
            {"name": "a", "value": 1.5},
            {"name": "longer", "value": None},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "—" in lines[3]

    def test_format_table_empty(self):
        assert format_table([]) == "(empty)"

    def test_format_series(self):
        text = format_series(
            "title", {"line": [(1, 2.0)]}, ("x", "y")
        )
        assert "title" in text
        assert "[line]" in text
        assert "2.00" in text


class TestConfigs:
    def test_four_configurations(self):
        names = [config.name for config in CONFIGS]
        assert names == ["Strong", "Indigo", "IPA", "Causal"]

    def test_mix_is_35_percent_writes(self):
        mix = OperationMix(TOURNAMENT_MIX)
        writes = [op for op in TOURNAMENT_MIX if op != "status"]
        assert mix.write_fraction(writes) == pytest.approx(0.35)


class TestWorkloadSmokes:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
    def test_tournament_workload_runs(self, config):
        sim, app, workload = build_tournament(
            config, n_players=10, n_tournaments=3
        )
        result = run_closed_loop(
            sim,
            workload.issue,
            {region: 1 for region in REGIONS},
            duration_ms=500.0,
            warmup_ms=50.0,
        )
        assert result.metrics.total_operations() > 0

    @pytest.mark.parametrize(
        "variant", [Variant.CAUSAL, Variant.ADD_WINS, Variant.REM_WINS]
    )
    def test_twitter_workload_runs(self, variant):
        sim, app, workload = build_twitter(variant, n_users=8)
        result = run_closed_loop(
            sim,
            workload.issue,
            {region: 1 for region in REGIONS},
            duration_ms=500.0,
            warmup_ms=50.0,
        )
        assert result.metrics.total_operations() > 0

    @pytest.mark.parametrize("variant", [Variant.CAUSAL, Variant.IPA])
    def test_ticket_workload_runs(self, variant):
        sim, app, workload = build_ticket(variant, n_events=4)
        result = run_closed_loop(
            sim,
            workload.issue,
            {region: 1 for region in REGIONS},
            duration_ms=500.0,
            warmup_ms=50.0,
        )
        assert result.metrics.total_operations() > 0
        # The audit functions run on live state without blowing up.
        for region in REGIONS:
            assert app.count_violations(region) >= 0
