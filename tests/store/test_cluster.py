"""Cluster orchestration tests."""

import pytest

from repro.errors import StoreError
from repro.crdts import AWSet
from repro.sim.events import Simulator
from repro.sim.latency import EU_WEST, REGIONS, US_EAST, US_WEST
from repro.store.cluster import Cluster, ConsistencyMode
from repro.store.registry import TypeRegistry


def make_cluster(mode=ConsistencyMode.CAUSAL, **kwargs):
    registry = TypeRegistry()
    registry.register_prefix("", AWSet)
    sim = Simulator()
    return sim, Cluster(sim, registry, mode=mode, **kwargs)


def add_op(key, element):
    def body(txn):
        txn.update(key, lambda s: s.prepare_add(element))
        return "add"

    return body


class TestCausalMode:
    def test_local_commit_replicates_everywhere(self):
        sim, cluster = make_cluster()
        cluster.submit(US_WEST, add_op("s", "x"), lambda _op: None)
        sim.run(until=5.0)
        # Committed locally, not yet remote.
        assert cluster.replica(US_WEST).get_object("s").value() == {"x"}
        assert cluster.replica(EU_WEST).get_object("s").value() == set()
        sim.run(until=500.0)
        for region in REGIONS:
            assert cluster.replica(region).get_object("s").value() == {"x"}
        assert cluster.converged()

    def test_local_latency(self):
        sim, cluster = make_cluster()
        done_at = []
        cluster.submit(
            EU_WEST, add_op("s", "x"), lambda _op: done_at.append(sim.now)
        )
        sim.run(until=100.0)
        assert done_at and done_at[0] < 5.0

    def test_concurrent_writes_converge(self):
        sim, cluster = make_cluster()
        cluster.submit(US_EAST, add_op("s", "a"), lambda _op: None)
        cluster.submit(EU_WEST, add_op("s", "b"), lambda _op: None)
        sim.run(until=1_000.0)
        assert cluster.converged()
        for region in REGIONS:
            assert cluster.replica(region).get_object("s").value() == {
                "a", "b",
            }


class TestStrongMode:
    def test_remote_client_pays_round_trip(self):
        sim, cluster = make_cluster(
            mode=ConsistencyMode.STRONG, primary=US_EAST
        )
        done_at = []
        cluster.submit(
            EU_WEST, add_op("s", "x"), lambda _op: done_at.append(sim.now)
        )
        sim.run(until=1_000.0)
        assert done_at and 70.0 < done_at[0] < 120.0

    def test_primary_client_stays_fast(self):
        sim, cluster = make_cluster(
            mode=ConsistencyMode.STRONG, primary=US_EAST
        )
        done_at = []
        cluster.submit(
            US_EAST, add_op("s", "x"), lambda _op: done_at.append(sim.now)
        )
        sim.run(until=1_000.0)
        assert done_at and done_at[0] < 10.0

    def test_reads_also_forwarded(self):
        sim, cluster = make_cluster(
            mode=ConsistencyMode.STRONG, primary=US_EAST
        )
        done_at = []

        def read_body(txn):
            txn.get("s")
            return "read"

        cluster.submit(
            US_WEST, read_body, lambda _op: done_at.append(sim.now),
            is_update=False,
        )
        sim.run(until=1_000.0)
        assert done_at and done_at[0] > 70.0

    def test_all_updates_serialise_at_primary(self):
        sim, cluster = make_cluster(
            mode=ConsistencyMode.STRONG, primary=US_EAST
        )
        for index in range(5):
            cluster.submit(
                REGIONS[index % 3], add_op("s", index), lambda _op: None
            )
        sim.run(until=2_000.0)
        assert cluster.replica(US_EAST).vv.get(US_EAST) == 5
        assert cluster.converged()


class TestIndigoMode:
    def test_reservation_gates_execution(self):
        sim, cluster = make_cluster(mode=ConsistencyMode.INDIGO)
        cluster.reservations.register("res", US_EAST)
        done_at = []
        cluster.submit(
            US_WEST, add_op("s", "x"),
            lambda _op: done_at.append(sim.now),
            reservations=("res",),
        )
        sim.run(until=1_000.0)
        assert done_at and done_at[0] > 75.0

    def test_held_reservation_is_fast(self):
        sim, cluster = make_cluster(mode=ConsistencyMode.INDIGO)
        cluster.reservations.register("res", US_WEST)
        done_at = []
        cluster.submit(
            US_WEST, add_op("s", "x"),
            lambda _op: done_at.append(sim.now),
            reservations=("res",),
        )
        sim.run(until=1_000.0)
        assert done_at and done_at[0] < 10.0


class TestFailures:
    def test_failed_region_rejects_clients(self):
        sim, cluster = make_cluster()
        cluster.fail_region(EU_WEST)
        with pytest.raises(StoreError):
            cluster.submit(EU_WEST, add_op("s", "x"), lambda _op: None)

    def test_unknown_region(self):
        sim, cluster = make_cluster()
        with pytest.raises(StoreError):
            cluster.replica("mars")

    def test_healed_region_catches_up_on_new_commits(self):
        sim, cluster = make_cluster()
        cluster.fail_region(EU_WEST)
        cluster.submit(US_EAST, add_op("s", "x"), lambda _op: None)
        sim.run(until=500.0)
        assert cluster.replica(EU_WEST).get_object("s").value() == set()
        cluster.heal_region(EU_WEST)
        cluster.submit(US_EAST, add_op("s", "y"), lambda _op: None)
        sim.run(until=1_000.0)
        # y depends on x; delivery waits for x, which was lost while
        # partitioned -- the receiver keeps it pending (no crash).
        replica = cluster.replica(EU_WEST)
        assert replica.get_object("s").value() == set()


class TestStability:
    def test_stable_vector_is_pointwise_min(self):
        sim, cluster = make_cluster()
        cluster.submit(US_EAST, add_op("s", "x"), lambda _op: None)
        sim.run(until=5.0)  # before replication lands
        stable = cluster.stable_vector()
        assert stable.get(US_EAST) == 0
        sim.run(until=500.0)
        stable = cluster.stable_vector()
        assert stable.get(US_EAST) == 1

    def test_compact_all_runs(self):
        sim, cluster = make_cluster()
        cluster.submit(US_EAST, add_op("s", "x"), lambda _op: None)
        sim.run(until=500.0)
        cluster.compact_all()  # smoke: no exception, state preserved
        assert cluster.replica(EU_WEST).get_object("s").value() == {"x"}
