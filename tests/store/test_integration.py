"""End-to-end integration: the paper's claim, executed.

The unmodified (Causal) Tournament violates its invariants under
concurrent conflicting operations; the IPA-modified version -- same
store, same schedule -- preserves them.  These tests replay the
Figure 2 race on the full stack (replicated store + CRDTs + app).
"""

import pytest

from repro.apps.common import Variant
from repro.apps.ticket import TicketApp, ticket_registry
from repro.apps.tournament import TournamentApp, tournament_registry
from repro.sim.events import Simulator
from repro.sim.latency import EU_WEST, REGIONS, US_EAST, US_WEST
from repro.store.cluster import Cluster, ConsistencyMode


def tournament_setup(variant):
    sim = Simulator()
    cluster = Cluster(sim, tournament_registry(variant))
    app = TournamentApp(cluster, variant)
    app.setup(["p1", "p2"], ["t1"], US_EAST)
    return sim, cluster, app


def run_figure2_race(app, sim):
    """enroll(p1, t1) at us-west concurrent with rem_tourn(t1) at eu-west."""
    app.enroll(US_WEST, "p1", "t1", lambda _op: None)
    app.rem_tourn(EU_WEST, "t1", lambda _op: None)
    sim.run(until=sim.now + 2_000.0)


class TestFigure2EndToEnd:
    def test_causal_violates_invariant(self):
        sim, cluster, app = tournament_setup(Variant.CAUSAL)
        run_figure2_race(app, sim)
        assert cluster.converged()
        violations = [app.count_violations(r) for r in REGIONS]
        assert all(v > 0 for v in violations)

    def test_ipa_preserves_invariant(self):
        sim, cluster, app = tournament_setup(Variant.IPA)
        run_figure2_race(app, sim)
        assert cluster.converged()
        for region in REGIONS:
            assert app.count_violations(region) == 0

    def test_ipa_semantics_when_no_conflict(self):
        """Without a concurrent remove, enroll behaves as originally."""
        sim, cluster, app = tournament_setup(Variant.IPA)
        app.enroll(US_WEST, "p1", "t1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        for region in REGIONS:
            replica = cluster.replica(region)
            assert ("p1", "t1") in replica.get_object("enrolled").value()
            assert "t1" in replica.get_object("tournaments").value()

    def test_ipa_rem_tourn_clears_enrolments(self):
        """Figure 2c semantics: after the race, either the enrolment
        survives with the tournament (2b) or both are gone (2c) --
        never a dangling enrolment."""
        sim, cluster, app = tournament_setup(Variant.IPA)
        run_figure2_race(app, sim)
        for region in REGIONS:
            replica = cluster.replica(region)
            enrolled = replica.get_object("enrolled").value()
            tournaments = replica.get_object("tournaments").value()
            for _p, t in enrolled:
                assert t in tournaments


class TestDoMatchRace:
    def test_ipa_match_restores_enrolments(self):
        sim, cluster, app = tournament_setup(Variant.IPA)
        app.enroll(US_EAST, "p1", "t1", lambda _op: None)
        app.enroll(US_EAST, "p2", "t1", lambda _op: None)
        app.begin_tourn(US_EAST, "t1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        # Concurrent: disenroll p1 at eu-west, match at us-west.
        app.disenroll(EU_WEST, "p1", "t1", lambda _op: None)
        app.do_match(US_WEST, "p1", "p2", "t1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        assert cluster.converged()
        for region in REGIONS:
            assert app.count_violations(region) == 0

    def test_causal_match_race_violates(self):
        sim, cluster, app = tournament_setup(Variant.CAUSAL)
        app.enroll(US_EAST, "p1", "t1", lambda _op: None)
        app.enroll(US_EAST, "p2", "t1", lambda _op: None)
        app.begin_tourn(US_EAST, "t1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        app.disenroll(EU_WEST, "p1", "t1", lambda _op: None)
        app.do_match(US_WEST, "p1", "p2", "t1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        violations = [app.count_violations(r) for r in REGIONS]
        assert any(v > 0 for v in violations)


class TestBeginFinishRace:
    def test_ipa_never_active_and_finished(self):
        sim, cluster, app = tournament_setup(Variant.IPA)
        app.begin_tourn(US_WEST, "t1", lambda _op: None)
        app.finish_tourn(EU_WEST, "t1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        assert cluster.converged()
        for region in REGIONS:
            replica = cluster.replica(region)
            active = replica.get_object("active").value()
            finished = replica.get_object("finished").value()
            assert not (("t1" in active) and ("t1" in finished))


class TestTicketOversell:
    def make(self, variant, capacity=2):
        sim = Simulator()
        cluster = Cluster(
            sim, ticket_registry(variant, capacity=capacity)
        )
        app = TicketApp(cluster, variant, capacity=capacity)
        app.setup(["e1"], US_EAST)
        return sim, cluster, app

    def fill_concurrently(self, app, sim, count_per_region=2):
        ticket = [0]
        for region in REGIONS:
            for _ in range(count_per_region):
                ticket[0] += 1
                app.buy_ticket(
                    region, f"{region}-k{ticket[0]}", "e1",
                    lambda _op: None,
                )
        sim.run(until=sim.now + 2_000.0)

    def test_causal_oversells(self):
        sim, cluster, app = self.make(Variant.CAUSAL)
        self.fill_concurrently(app, sim)
        assert any(app.count_violations(r) > 0 for r in REGIONS)

    def test_ipa_compensates_on_read(self):
        sim, cluster, app = self.make(Variant.IPA)
        self.fill_concurrently(app, sim)
        # Observed state within bounds even before any explicit read.
        for region in REGIONS:
            assert app.count_violations(region) == 0
        # A read commits the repair: raw state shrinks to the bound and
        # cancelled buyers are reimbursed.
        app.view_event(US_EAST, "e1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        raw = [app.count_raw_oversells(r) for r in REGIONS]
        assert raw == [0, 0, 0]
        assert app.reimbursements(US_EAST) > 0

    def test_compensations_converge_across_replicas(self):
        sim, cluster, app = self.make(Variant.IPA)
        self.fill_concurrently(app, sim)
        # Two replicas detect and repair the same violation.
        app.view_event(US_EAST, "e1", lambda _op: None)
        app.view_event(EU_WEST, "e1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        assert cluster.converged()
        values = [
            cluster.replica(r).get_object("sold:e1").raw_value()
            for r in REGIONS
        ]
        assert values[0] == values[1] == values[2]
        assert len(values[0]) <= 2
