"""Shared-grant reservation tests."""

import pytest

from repro.sim.events import Simulator
from repro.sim.latency import EU_WEST, US_EAST, US_WEST, GeoLatencyModel
from repro.sim.network import Network
from repro.store.reservations import ReservationManager


def manager():
    sim = Simulator()
    network = Network(sim, GeoLatencyModel(jitter=0.0))
    mgr = ReservationManager(sim, network)
    mgr.register("res", US_EAST)
    return sim, mgr


class TestSharedGrants:
    def test_first_shared_acquire_pays_one_rtt(self):
        sim, mgr = manager()
        fired = []
        mgr.acquire(US_WEST, ("res",), lambda: fired.append(sim.now),
                    exclusive=False)
        sim.run()
        assert fired == [pytest.approx(80.0)]
        assert mgr.holders_of("res") == {US_EAST, US_WEST}
        assert not mgr.is_exclusive("res")

    def test_shared_holders_execute_locally(self):
        sim, mgr = manager()
        mgr.acquire(US_WEST, ("res",), lambda: None, exclusive=False)
        sim.run()
        fired = []
        # Both holders now acquire with no delay.
        mgr.acquire(US_WEST, ("res",), lambda: fired.append(sim.now),
                    exclusive=False)
        mgr.acquire(US_EAST, ("res",), lambda: fired.append(sim.now),
                    exclusive=False)
        assert len(fired) == 2

    def test_exclusive_revokes_all_shared_holders(self):
        sim, mgr = manager()
        mgr.acquire(US_WEST, ("res",), lambda: None, exclusive=False)
        mgr.acquire(EU_WEST, ("res",), lambda: None, exclusive=False)
        sim.run()
        assert len(mgr.holders_of("res")) == 3
        fired = []
        mgr.acquire(US_WEST, ("res",), lambda: fired.append(sim.now),
                    exclusive=True)
        sim.run()
        assert fired
        assert mgr.holders_of("res") == {US_WEST}
        assert mgr.is_exclusive("res")
        # Parallel revocations: gated by the slowest peer round trip
        # (US_WEST <-> EU_WEST is 160 ms).
        assert fired[0] >= 160.0

    def test_exclusive_upgrade_when_sole_holder_is_free(self):
        sim, mgr = manager()
        fired = []
        mgr.acquire(US_EAST, ("res",), lambda: fired.append(sim.now),
                    exclusive=True)
        assert fired == [0.0]

    def test_shared_after_exclusive_requires_exchange(self):
        sim, mgr = manager()
        mgr.acquire(US_WEST, ("res",), lambda: None, exclusive=True)
        sim.run()
        fired = []
        mgr.acquire(US_EAST, ("res",), lambda: fired.append(sim.now),
                    exclusive=False)
        sim.run()
        assert fired and fired[0] > 0.0
        assert mgr.holders_of("res") == {US_EAST, US_WEST}

    def test_revocation_counter(self):
        sim, mgr = manager()
        mgr.acquire(US_WEST, ("res",), lambda: None, exclusive=False)
        sim.run()
        mgr.acquire(EU_WEST, ("res",), lambda: None, exclusive=True)
        sim.run()
        assert mgr.revocations == 2  # revoked from us-east and us-west

    def test_blocked_by_unavailable_shared_holder(self):
        sim, mgr = manager()
        mgr.acquire(US_WEST, ("res",), lambda: None, exclusive=False)
        sim.run()
        mgr.mark_unavailable(US_EAST)
        fired = []
        mgr.acquire(EU_WEST, ("res",), lambda: fired.append(sim.now),
                    exclusive=True)
        sim.run(until=sim.now + 10_000.0)
        assert fired == []  # cannot revoke from the downed holder
