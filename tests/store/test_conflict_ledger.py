"""Satellite 4: the conflict ledger survives SIGKILL byte-identically.

The ledger is the durable record of every invariant violation, repair
and compensation a run observed.  Its contract mirrors the commit
log's: every acknowledged append survives SIGKILL, recovery loses and
duplicates nothing, and a recovered replica re-detecting the same
still-open conflict appends nothing -- the ledger file is
byte-identical across the crash+recovery+re-detection cycle.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.check import build_trial, run_trial
from repro.check.oracles import BoundProbe, Violation
from repro.store.conflicts import (
    ConflictLedger,
    ConflictRecord,
    ledger_engine_name,
    open_ledgers,
    record_compensations,
    record_trial_violations,
)

ENGINES = ["memory", "file", "sqlite"]


def sample_append(ledger, n, kind="violation"):
    records = []
    for i in range(n):
        records.append(
            ledger.append(
                kind=kind,
                oracle="invariant",
                invariant=f"cap_{i}",
                region="us-east",
                witness=(("p", f"x{i}"),),
                ops=(("us-west", i + 1),),
                replicas=("us-east", "us-west"),
                detail=f"burst {i}",
                detected_at_ms=float(i),
            )
        )
    return records


class TestRecord:
    def test_round_trips_through_dict(self):
        record = ConflictRecord(
            seq=3,
            kind="violation",
            oracle="invariant",
            invariant="forall p: enrolled(p) <= cap",
            region="eu-west",
            witness=(("p", "alice"),),
            ops=(("us-east", 4), ("us-west", 2)),
            replicas=("eu-west", "us-east", "us-west"),
            detail="cap exceeded",
            detected_at_ms=120.5,
        )
        assert ConflictRecord.from_dict(record.to_dict()) == record

    def test_identity_ignores_seq_time_and_lineage(self):
        base = dict(
            kind="violation",
            oracle="invariant",
            invariant="cap",
            region="us-east",
            witness=(("p", "a"),),
        )
        first = ConflictRecord(seq=0, ops=(("x", 1),), **base)
        redetected = ConflictRecord(seq=9, detected_at_ms=99.0, **base)
        assert first.identity() == redetected.identity()
        other = ConflictRecord(seq=1, **{**base, "witness": (("p", "b"),)})
        assert first.identity() != other.identity()

    def test_describe_names_the_conflict(self):
        record = ConflictRecord(
            seq=0,
            kind="repair",
            oracle="invariant",
            invariant="cap",
            region="us-east",
            witness=(("p", "a"),),
            resolution="converged",
        )
        text = record.describe()
        assert "repair" in text
        assert "p=a" in text
        assert "converged" in text


class TestLedgerDurability:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_reopen_replays_every_acknowledged_append(
        self, tmp_path, engine
    ):
        path = str(tmp_path / "us-east-conflicts")
        ledger = ConflictLedger(path, engine=engine)
        written = sample_append(ledger, 5)
        assert all(r is not None for r in written)
        # Simulate SIGKILL: abandon the handle without close() -- every
        # append synced before returning.
        del ledger
        recovered = ConflictLedger(path, engine=engine)
        assert [r.to_dict() for r in recovered.records()] == [
            r.to_dict() for r in written
        ]
        assert recovered.counts() == {"violation": 5}
        recovered.close()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_redetection_after_recovery_appends_nothing(
        self, tmp_path, engine
    ):
        path = str(tmp_path / "us-east-conflicts")
        ledger = ConflictLedger(path, engine=engine)
        sample_append(ledger, 4)
        ledger.close()
        recovered = ConflictLedger(path, engine=engine)
        duplicates = sample_append(recovered, 4)  # same identities
        assert duplicates == [None] * 4
        assert len(recovered) == 4
        # New identities still append with continuing seq numbers.
        fresh = recovered.append(
            kind="violation",
            oracle="invariant",
            invariant="cap_new",
            region="us-east",
        )
        assert fresh.seq == 4
        recovered.close()

    def test_memory_engine_is_promoted_to_durable_file(self, tmp_path):
        assert ledger_engine_name("memory") == "file"
        assert ledger_engine_name(None) == "file"
        assert ledger_engine_name("sqlite") == "sqlite"
        path = str(tmp_path / "us-east-conflicts")
        ledger = ConflictLedger(path, engine="memory")
        sample_append(ledger, 2)
        ledger.close()
        assert os.path.exists(path + ".objlog")
        assert len(ConflictLedger(path, engine="memory")) == 2

    @pytest.mark.parametrize("engine", ENGINES)
    def test_sigkill_mid_burst_loses_nothing(self, tmp_path, engine):
        """A real SIGKILL (not a clean exit) mid-append-burst: every
        append acknowledged on stdout must be present after recovery,
        unacknowledged ones may be absent, nothing is duplicated."""
        path = str(tmp_path / "us-east-conflicts")
        script = textwrap.dedent(
            f"""
            import os, sys
            from repro.store.conflicts import ConflictLedger
            ledger = ConflictLedger({path!r}, engine={engine!r})
            for i in range(50):
                rec = ledger.append(
                    kind="violation", oracle="invariant",
                    invariant=f"cap_{{i}}", region="us-east",
                    witness=(("p", f"x{{i}}"),),
                    detected_at_ms=float(i),
                )
                print(rec.seq, flush=True)
                if i == 23:
                    os.kill(os.getpid(), {int(signal.SIGKILL)})
            """
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            timeout=60,
        )
        assert proc.returncode == -signal.SIGKILL
        acked = [int(line) for line in proc.stdout.split()]
        assert len(acked) == 24, proc.stderr

        recovered = ConflictLedger(path, engine=engine)
        seqs = [r.seq for r in recovered.records()]
        assert seqs == acked  # no loss, no duplication, no reorder
        assert len(set(r.identity() for r in recovered.records())) == len(
            seqs
        )
        recovered.close()

    @pytest.mark.parametrize("engine", ["file", "sqlite"])
    def test_recovery_plus_redetection_is_byte_identical(
        self, tmp_path, engine
    ):
        path = str(tmp_path / "us-east-conflicts")
        suffix = ".objlog" if engine == "file" else ".db"
        ledger = ConflictLedger(path, engine=engine)
        sample_append(ledger, 6)
        ledger.close()
        before = open(path + suffix, "rb").read()
        recovered = ConflictLedger(path, engine=engine)
        sample_append(recovered, 6)  # full re-detection, all dups
        recovered.close()
        after = open(path + suffix, "rb").read()
        assert before == after


class TestOpenLedgers:
    def test_discovers_every_region_ledger(self, tmp_path):
        for region, engine in (
            ("us-east", "file"),
            ("eu-west", "sqlite"),
        ):
            ledger = ConflictLedger(
                str(tmp_path / f"{region}-conflicts"), engine=engine
            )
            sample_append(ledger, 2)
            ledger.close()
        ledgers = open_ledgers(str(tmp_path))
        assert sorted(ledgers) == ["eu-west", "us-east"]
        assert all(len(ledger) == 2 for ledger in ledgers.values())
        for ledger in ledgers.values():
            ledger.close()

    def test_missing_dir_yields_no_ledgers(self, tmp_path):
        assert open_ledgers(str(tmp_path / "absent")) == {}


class TestCheckerRecording:
    def test_trial_violations_land_with_lineage(self, tmp_path):
        ledger = ConflictLedger(str(tmp_path / "ledger"))
        violations = [
            Violation(
                oracle="invariant",
                region="us-east",
                name="cap",
                witness=(("p", "a"),),
                detail="over",
            ),
            Violation(
                oracle="invariant",
                region="us-east",
                name="cap",
                witness=(("p", "a"),),
                detail="over",
            ),  # duplicate finding
        ]
        lineage = {"us-east": tuple(("us-west", i) for i in range(40))}
        appended = record_trial_violations(
            ledger, violations, lineage, detected_at_ms=50.0
        )
        assert appended == 1
        record = ledger.records()[0]
        assert len(record.ops) == 32  # LINEAGE_CAP trims the window
        assert record.ops[-1] == ("us-west", 39)
        assert record.replicas == ("us-east", "us-west")
        ledger.close()

    def test_paid_debt_becomes_compensation_records(self, tmp_path):
        ledger = ConflictLedger(str(tmp_path / "ledger"))
        probes = {
            "us-east": [
                # Overdraft of 2, fully covered: the success case the
                # debt oracle never reports -- the ledger's job.
                BoundProbe(
                    key="budget", raw=12, observed=10, bound=10,
                    op="<=", covered=2,
                ),
                # No overdraft: nothing to record.
                BoundProbe(
                    key="stock", raw=5, observed=5, bound=0, op=">=",
                ),
                # Unpaid overdraft: that is a violation, not a
                # compensation.
                BoundProbe(
                    key="seats", raw=9, observed=9, bound=6, op="<=",
                    covered=1,
                ),
            ]
        }
        appended = record_compensations(
            ledger, probes, detected_at_ms=75.0
        )
        assert appended == 1
        record = ledger.records()[0]
        assert record.kind == "compensation"
        assert record.invariant == "budget"
        assert record.resolution == "compensated"
        assert "overdraft 2" in record.detail
        ledger.close()

    def test_run_trial_with_ledger_is_fingerprint_neutral(self, tmp_path):
        spec = build_trial("tournament", "Causal", 11, 0)
        bare = run_trial(spec)
        ledger = ConflictLedger(str(tmp_path / "ledger"))
        observed = run_trial(spec, ledger=ledger)
        assert [v.to_dict() for v in observed.violations] == [
            v.to_dict() for v in bare.violations
        ]
        assert observed.digests == bare.digests
        assert bare.violations  # the Causal config does violate
        assert ledger.counts()["violation"] == len(
            {
                (v.oracle, v.name, v.region, v.witness)
                for v in bare.violations
            }
        )
        ledger.close()
