"""Anti-entropy, crash recovery, and convergence under faults."""

from repro.apps.common import Variant
from repro.apps.tournament import TournamentApp, tournament_registry
from repro.crdts import AWSet
from repro.crdts.clock import VersionVector
from repro.sim.events import Simulator
from repro.sim.faults import CrashWindow, FaultPlan, PartitionWindow
from repro.sim.latency import EU_WEST, US_EAST, US_WEST
from repro.store.cluster import Cluster
from repro.store.registry import TypeRegistry
from repro.store.replica import Replica


def set_registry():
    reg = TypeRegistry()
    reg.register_prefix("", AWSet)
    return reg


def make_cluster(faults=None, antientropy=True):
    sim = Simulator()
    cluster = Cluster(sim, set_registry(), faults=faults)
    if antientropy:
        cluster.start_antientropy(interval_ms=100.0, seed=17)
    return sim, cluster


def add(cluster, region, key, element, done=None):
    cluster.submit(
        region,
        lambda txn: (
            txn.update(key, lambda s, e=element: s.prepare_add(e)),
            "add",
        )[1],
        done or (lambda _op: None),
    )


class TestReplicaLog:
    def test_records_since_serves_missing_suffix(self):
        replica = Replica("A", set_registry())
        records = []
        for element in "xyz":
            txn = replica.begin()
            txn.update("s", lambda s, e=element: s.prepare_add(e))
            records.append(txn.commit())
        vv = VersionVector({"A": 1})
        assert replica.records_since(vv) == records[1:]
        assert replica.records_since(replica.vv) == []

    def test_rebuild_from_log_restores_state(self):
        a = Replica("A", set_registry())
        b = Replica("B", set_registry())
        for element in "xy":
            txn = a.begin()
            txn.update("s", lambda s, e=element: s.prepare_add(e))
            record = txn.commit()
            b.apply_remote(record)
        txn = b.begin()
        txn.update("s", lambda s: s.prepare_add("z"))
        txn.commit()
        before_value = b.get_object("s").value()
        before_vv = b.vv.copy()
        b.rebuild_from_log()
        assert b.get_object("s").value() == before_value
        assert b.vv == before_vv
        assert b.recoveries == 1
        # The commit clock is rebuilt too: new commits keep advancing.
        txn = b.begin()
        txn.update("s", lambda s: s.prepare_add("w"))
        txn.commit()
        assert b.vv.get("B") == 2


class TestAntiEntropyHealing:
    def test_lossy_network_converges_with_antientropy(self):
        plan = FaultPlan(seed=23, drop=0.5)
        sim, cluster = make_cluster(faults=plan)
        for i in range(30):
            add(cluster, (US_EAST, US_WEST, EU_WEST)[i % 3], "s", i)
        elapsed = cluster.run_until_converged(timeout_ms=120_000.0)
        assert elapsed is not None
        digests = cluster.state_digest()
        assert len(set(digests.values())) == 1
        assert cluster.replica(US_EAST).get_object("s").value() == set(
            range(30)
        )
        assert cluster.antientropy.records_retransmitted > 0

    def test_lossy_network_stalls_without_antientropy(self):
        plan = FaultPlan(seed=23, drop=0.5)
        sim, cluster = make_cluster(faults=plan, antientropy=False)
        for i in range(30):
            add(cluster, (US_EAST, US_WEST, EU_WEST)[i % 3], "s", i)
        assert cluster.run_until_converged(timeout_ms=30_000.0) is None

    def test_partition_heals_after_window(self):
        plan = FaultPlan(
            seed=5,
            partitions=(
                PartitionWindow(
                    0.0, 3_000.0, (US_EAST,), (US_WEST, EU_WEST)
                ),
            ),
        )
        sim, cluster = make_cluster(faults=plan)
        add(cluster, US_EAST, "s", "from-east")
        add(cluster, US_WEST, "s", "from-west")
        sim.run(until=2_500.0)
        assert cluster.replica(US_WEST).get_object("s").value() == {
            "from-west"
        }
        assert cluster.run_until_converged(timeout_ms=30_000.0) is not None
        for region in (US_EAST, US_WEST, EU_WEST):
            assert cluster.replica(region).get_object("s").value() == {
                "from-east",
                "from-west",
            }

    def test_backoff_grows_during_partition(self):
        plan = FaultPlan(
            seed=5,
            partitions=(
                PartitionWindow(
                    0.0, 8_000.0, (US_EAST,), (US_WEST, EU_WEST)
                ),
            ),
        )
        sim, cluster = make_cluster(faults=plan)
        sim.run(until=7_000.0)
        backoff = cluster.antientropy.backoff_ms
        assert backoff[(US_EAST, US_WEST)] > 100.0
        assert cluster.antientropy.sync_timeouts > 0


class TestCrashRecovery:
    def test_crashed_replica_catches_up_after_recovery(self):
        plan = FaultPlan(crashes=(CrashWindow(EU_WEST, 500.0, 4_000.0),))
        sim, cluster = make_cluster(faults=plan)
        add(cluster, US_EAST, "s", "before")
        sim.run(until=1_000.0)
        # Committed while eu-west is down: broadcast skips it.
        add(cluster, US_EAST, "s", "during")
        add(cluster, US_WEST, "s", "during-2")
        sim.run(until=3_000.0)
        assert cluster.is_crashed(EU_WEST)
        assert cluster.replica(EU_WEST).get_object("s").value() == {
            "before"
        }
        assert cluster.run_until_converged(timeout_ms=60_000.0) is not None
        assert cluster.replica(EU_WEST).get_object("s").value() == {
            "before",
            "during",
            "during-2",
        }
        assert cluster.replica(EU_WEST).recoveries == 1

    def test_submit_to_crashed_region_raises(self):
        import pytest

        from repro.errors import StoreError

        plan = FaultPlan(crashes=(CrashWindow(EU_WEST, 0.0, 1_000.0),))
        sim, cluster = make_cluster(faults=plan)
        sim.run(until=100.0)
        with pytest.raises(StoreError, match="unavailable"):
            add(cluster, EU_WEST, "s", "x")

    def test_crash_loses_pending_buffer_but_recovers(self):
        """Records buffered (undeliverable) at crash time are lost with
        the volatile state and re-fetched by anti-entropy."""
        plan = FaultPlan(crashes=(CrashWindow(EU_WEST, 200.0, 2_000.0),))
        sim, cluster = make_cluster(faults=plan)
        add(cluster, US_EAST, "s", "x")
        sim.run(until=150.0)
        cluster.receiver(EU_WEST).clear()  # nothing pending is fine too
        assert cluster.run_until_converged(timeout_ms=60_000.0) is not None
        digests = cluster.state_digest()
        assert len(set(digests.values())) == 1


class TestIpaInvariantsUnderChaos:
    def test_tournament_invariants_hold_on_lossy_network(self):
        plan = FaultPlan(seed=41, drop=0.3, duplicate=0.2, reorder=0.2)
        sim = Simulator()
        cluster = Cluster(
            sim, tournament_registry(Variant.IPA), faults=plan
        )
        cluster.start_antientropy(interval_ms=100.0, seed=3)
        app = TournamentApp(cluster, Variant.IPA)
        app.setup(["p1", "p2", "p3"], ["t1"], US_EAST)
        sim.run(until=sim.now + 2_000.0)
        app.enroll(US_WEST, "p1", "t1", lambda _op: None)
        app.enroll(EU_WEST, "p2", "t1", lambda _op: None)
        app.rem_tourn(US_EAST, "t1", lambda _op: None)
        app.do_match(US_WEST, "p1", "p2", "t1", lambda _op: None)
        assert cluster.run_until_converged(timeout_ms=120_000.0) is not None
        for region in (US_EAST, US_WEST, EU_WEST):
            assert app.count_violations(region) == 0


class TestConvergenceGatedBackoff:
    """The retry policy resets only when a round actually converged.

    A round that was *answered* but left the requester behind the
    responder's vector must hold its current delay: snapping back to
    the base rate on every served response lets a persistently-behind
    pair flood its peer at full rate while never catching up.
    """

    def test_answered_but_diverged_round_holds_delay(self):
        from repro.store.antientropy import SyncResponse

        sim, cluster = make_cluster()
        engine = cluster.antientropy
        pair = (US_EAST, US_WEST)
        state = engine._pairs[pair]
        # Grow the pair's backoff as a run of timeouts would.
        state.delay_ms = 1_600.0
        state.outstanding = 7
        # An answered round whose records do NOT close the gap: the
        # responder's vector claims records the requester never gets.
        engine._on_response(
            SyncResponse(
                responder=US_WEST,
                requester=US_EAST,
                request_id=7,
                records=(),
                vv=VersionVector({"B": 5}),
            )
        )
        assert state.outstanding is None
        assert not state.converged
        engine._tick(pair)
        # Held, not reset: only convergence earns the base rate back.
        assert state.delay_ms == 1_600.0

    def test_converged_round_resets_delay(self):
        from repro.store.antientropy import SyncResponse

        sim, cluster = make_cluster()
        engine = cluster.antientropy
        pair = (US_EAST, US_WEST)
        state = engine._pairs[pair]
        state.delay_ms = 1_600.0
        state.outstanding = 9
        engine._on_response(
            SyncResponse(
                responder=US_WEST,
                requester=US_EAST,
                request_id=9,
                records=(),
                vv=cluster.replica(US_WEST).vv.copy(),
            )
        )
        assert state.converged
        engine._tick(pair)
        assert state.delay_ms == 100.0  # back to the base interval

    def test_backoff_resets_after_partition_heals(self):
        plan = FaultPlan(
            seed=5,
            partitions=(
                PartitionWindow(
                    0.0, 8_000.0, (US_EAST,), (US_WEST, EU_WEST)
                ),
            ),
        )
        sim, cluster = make_cluster(faults=plan)
        add(cluster, US_WEST, "s", "x")
        sim.run(until=7_000.0)
        grown = cluster.antientropy.backoff_ms[(US_EAST, US_WEST)]
        assert grown > 100.0
        assert cluster.run_until_converged(timeout_ms=60_000.0) is not None
        # One post-heal round marks the pair converged; the tick after
        # that resets the delay -- two backed-off cycles at most.
        sim.run(until=sim.now + 15_000.0)
        healed = cluster.antientropy.backoff_ms[(US_EAST, US_WEST)]
        assert healed == 100.0


class TestShardDigestPruning:
    """Snapshot-fallback responses prune shards the peer agrees on."""

    def make_sharded_pair(self):
        sim = Simulator()
        cluster = Cluster(sim, set_registry(), shards=3)
        for i in range(24):
            add(cluster, (US_EAST, US_WEST, EU_WEST)[i % 3], f"k{i % 8}", i)
        assert cluster.run_until_converged(timeout_ms=60_000.0) is not None
        return cluster

    def test_matching_shards_pruned_to_none(self):
        cluster = self.make_sharded_pair()
        a = cluster.replica(US_EAST)
        b = cluster.replica(US_WEST)
        assert a.compact_log(a.vv, min_records=1) > 0
        # Force the snapshot fallback with the peer's shard digests:
        # converged peers agree on every shard, so all are pruned.
        records, snapshot = a.sync_answer(
            VersionVector(), b.shard_digests()
        )
        assert snapshot is not None
        assert all(shard is None for shard in snapshot.shards)
        # Without digests (the single-shard request path) the full
        # snapshot ships.
        _, full = a.sync_answer(VersionVector())
        assert all(shard is not None for shard in full.shards)

    def test_divergent_shard_still_ships(self):
        cluster = self.make_sharded_pair()
        a = cluster.replica(US_EAST)
        b = cluster.replica(US_WEST)
        assert a.compact_log(a.vv, min_records=1) > 0
        # Perturb one key on the peer: only the owning shard's digest
        # changes, so exactly that shard ships.
        from repro.crdts.base import Dot, EventContext

        victim = "k0"
        owner = b.storage.shard_of(victim)
        obj = b.get_object(victim)
        obj.effect(
            obj.prepare_add("divergence"),
            EventContext(dot=Dot("X", 1), vv=VersionVector({"X": 1})),
        )
        _, snapshot = a.sync_answer(VersionVector(), b.shard_digests())
        assert snapshot is not None
        for index, shard in enumerate(snapshot.shards):
            if index == owner:
                assert shard is not None
            else:
                assert shard is None

    def test_pruned_snapshot_installs_with_local_shards_kept(self):
        cluster = self.make_sharded_pair()
        a = cluster.replica(US_EAST)
        b = cluster.replica(US_WEST)
        assert a.compact_log(a.vv, min_records=1) > 0
        before = {key: b.get_object(key).value() for key in b.keys()}
        _, snapshot = a.sync_answer(VersionVector(), b.shard_digests())
        assert b.install_snapshot(snapshot)
        assert {
            key: b.get_object(key).value() for key in b.keys()
        } == before
