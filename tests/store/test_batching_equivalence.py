"""Equivalence of batched replication and delta dependency metadata.

Batching (``batch_ms > 0``) and delta-encoded dependencies
(``full_vv=False``) are transport optimisations: they change how commit
records travel, never what state replicas converge to.  These tests pin
that contract:

- the same scripted add-only workload converges to bit-for-bit
  identical state digests with batching off and on -- on a perfect
  deterministic network (where even the version vectors must match)
  and under seeded fault plans with drops, duplication, reordering, a
  partition and a replica crash (where anti-entropy closes the gaps);
- delta-encoded records reconstruct the same causal contexts as full
  vector copies (``full_vv=True`` vs the default);
- delta records survive ``rebuild_from_log`` byte-identically, with
  and without log compaction having replaced the log prefix by a
  snapshot;
- the compaction machinery's fallback (``sync_answer`` shipping a
  snapshot when the log cannot serve a far-behind peer, and
  ``install_snapshot`` adopting it) reproduces the digest.

The workload is add-only on purpose: adds commute and capture no
observed state at prepare time, so the converged *value* is a function
of the committed-record set alone -- which the fixed submission
schedule makes identical across transport modes even though fault
decisions and latency draws differ per message.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crdts import AWSet
from repro.crdts.clock import VersionVector
from repro.errors import StoreError
from repro.sim.events import Simulator
from repro.sim.faults import CrashWindow, FaultPlan, PartitionWindow
from repro.sim.latency import EU_WEST, REGIONS, US_EAST, US_WEST, GeoLatencyModel
from repro.store.cluster import Cluster
from repro.store.registry import TypeRegistry
from repro.store.replica import Replica


def make_registry() -> TypeRegistry:
    registry = TypeRegistry()
    registry.register_prefix("", AWSet)
    return registry


def add_op(key, element):
    def body(txn):
        txn.update(key, lambda s: s.prepare_add(element))
        return "add"

    return body


def scripted_run(
    batch_ms,
    seed=7,
    n_ops=80,
    full_vv=False,
    faults=None,
    deterministic_latency=True,
):
    """Submit a fixed add-only schedule and run to convergence.

    The schedule (times, regions, keys) is drawn up-front from a seeded
    RNG, so it is identical for every transport mode; only message
    traffic differs between runs.
    """
    sim = Simulator()
    latency = GeoLatencyModel(jitter=0.0) if deterministic_latency else None
    cluster = Cluster(
        sim,
        make_registry(),
        batch_ms=batch_ms,
        full_vv=full_vv,
        latency=latency,
        faults=faults,
    )
    if faults is not None:
        cluster.start_antientropy(interval_ms=200.0, seed=seed + 1)
    rng = random.Random(seed)
    blocked = []
    for i in range(n_ops):
        when = 100.0 + i * 40.0 + rng.random() * 20.0
        region = REGIONS[rng.randrange(len(REGIONS))]
        key = f"k{rng.randrange(6)}"
        element = f"e{i}"

        def submit(region=region, key=key, element=element):
            try:
                cluster.submit(
                    region, add_op(key, element), lambda _op: None
                )
            except StoreError:
                # A crashed region refuses the submit; the fixed
                # schedule makes the refusal set mode-independent.
                blocked.append(element)

        sim.at(when, submit)
    sim.run(until=100.0 + n_ops * 60.0 + 2_000.0)
    elapsed = cluster.run_until_converged(timeout_ms=120_000.0)
    assert elapsed is not None, "run failed to converge"
    return cluster, blocked


def chaos_plan(seed):
    return FaultPlan(
        seed=seed,
        drop=0.20,
        duplicate=0.10,
        reorder=0.15,
        reorder_delay_ms=100.0,
        partitions=(
            PartitionWindow(1_500.0, 3_000.0, (US_EAST,), (US_WEST, EU_WEST)),
        ),
        crashes=(CrashWindow(EU_WEST, 3_500.0, 4_500.0),),
    )


class TestBatchingDigestEquality:
    def test_perfect_network_bit_for_bit(self):
        """Deterministic latencies: state AND vectors match exactly."""
        unbatched, _ = scripted_run(batch_ms=0.0)
        batched, _ = scripted_run(batch_ms=25.0)
        assert batched.state_digest() == unbatched.state_digest()
        assert len(set(batched.state_digest().values())) == 1
        for region in REGIONS:
            assert (
                batched.replica(region).vv.entries
                == unbatched.replica(region).vv.entries
            )
        # Batching actually coalesced replication traffic.
        assert (
            batched.replication_messages
            < unbatched.replication_messages
        )

    @pytest.mark.parametrize("seed", [7, 19, 42])
    def test_under_seeded_fault_plans(self, seed):
        """Drops, dups, reordering, a partition and a crash -- the
        converged digests still agree across batch modes."""
        unbatched, blocked_a = scripted_run(
            batch_ms=0.0, seed=seed, faults=chaos_plan(seed)
        )
        batched, blocked_b = scripted_run(
            batch_ms=25.0, seed=seed, faults=chaos_plan(seed)
        )
        assert blocked_a == blocked_b
        assert batched.state_digest() == unbatched.state_digest()
        assert len(set(batched.state_digest().values())) == 1


class TestDeltaMetadataEquivalence:
    def test_delta_matches_full_vv(self):
        delta, _ = scripted_run(batch_ms=25.0, full_vv=False)
        full, _ = scripted_run(batch_ms=25.0, full_vv=True)
        assert delta.state_digest() == full.state_digest()
        for region in REGIONS:
            assert (
                delta.replica(region).vv.entries
                == full.replica(region).vv.entries
            )

    def test_delta_records_rebuild_byte_identical(self):
        cluster, _ = scripted_run(batch_ms=25.0)
        before = cluster.state_digest()
        vvs = {
            region: dict(cluster.replica(region).vv.entries)
            for region in REGIONS
        }
        for region in REGIONS:
            cluster.replica(region).rebuild_from_log()
        assert cluster.state_digest() == before
        for region in REGIONS:
            assert cluster.replica(region).vv.entries == vvs[region]

    def test_rebuild_after_compaction(self):
        """Snapshot + residual log replays to the same digest."""
        cluster, _ = scripted_run(batch_ms=25.0)
        before = cluster.state_digest()
        replica = cluster.replica(US_EAST)
        truncated = replica.compact_log(replica.vv, min_records=1)
        assert truncated > 0
        replica.rebuild_from_log()
        assert cluster.state_digest() == before


class TestSnapshotFallback:
    def test_sync_answer_ships_snapshot_past_truncation(self):
        cluster, _ = scripted_run(batch_ms=25.0)
        replica = cluster.replica(US_EAST)
        assert replica.compact_log(replica.vv, min_records=1) > 0
        # A peer at the truncation base can still be served from the
        # log alone...
        records, snapshot = replica.sync_answer(replica.vv)
        assert snapshot is None
        # ... but one from before the base needs the snapshot.
        records, snapshot = replica.sync_answer(VersionVector())
        assert snapshot is not None

    def test_install_snapshot_reproduces_digest(self):
        cluster, _ = scripted_run(batch_ms=25.0)
        source = cluster.replica(US_EAST)
        assert source.compact_log(source.vv, min_records=1) > 0
        _, snapshot = source.sync_answer(VersionVector())
        fresh = Replica("restored", make_registry())
        assert fresh.install_snapshot(snapshot)
        assert fresh.vv.entries == source.vv.entries
        assert {
            key: fresh.get_object(key).value() for key in fresh.keys()
        } == {
            key: source.get_object(key).value() for key in source.keys()
        }
        # Installing a non-dominating snapshot is refused: an empty
        # replica's snapshot would un-apply everything.
        empty = Replica("empty", make_registry())
        assert not source.install_snapshot(empty._take_snapshot())


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_ops=st.integers(min_value=1, max_value=30),
)
def test_transport_modes_agree_on_random_schedules(seed, n_ops):
    """Property: for any seeded add-only schedule, every transport mode
    (per-record vs batched, delta vs full vectors) converges to the
    same digests."""
    reference, _ = scripted_run(batch_ms=0.0, seed=seed, n_ops=n_ops)
    expected = reference.state_digest()
    assert len(set(expected.values())) == 1
    batched_delta, _ = scripted_run(batch_ms=25.0, seed=seed, n_ops=n_ops)
    assert batched_delta.state_digest() == expected
    batched_full, _ = scripted_run(
        batch_ms=25.0, seed=seed, n_ops=n_ops, full_vv=True
    )
    assert batched_full.state_digest() == expected
