"""Fault-tolerance tests for the §5.2.5 claim.

"Our approach is fault-tolerant as a client can execute operations as
long as it can access a single server.  In Indigo, if a server that
holds the necessary reservation to execute some operation becomes
unavailable, the operation cannot be executed."
"""

import pytest

from repro.apps.common import Variant
from repro.apps.tournament import TournamentApp, tournament_registry
from repro.sim.events import Simulator
from repro.sim.latency import EU_WEST, REGIONS, US_EAST, US_WEST
from repro.store.cluster import Cluster, ConsistencyMode


def make(mode, variant):
    sim = Simulator()
    cluster = Cluster(sim, tournament_registry(variant), mode=mode)
    app = TournamentApp(cluster, variant)
    app.setup(["p1", "p2"], ["t1"], US_EAST)
    cluster.reservations.register("tourn:t1", US_EAST)
    return sim, cluster, app


class TestIpaSurvivesPartitions:
    def test_operations_complete_with_remote_regions_down(self):
        sim, cluster, app = make(ConsistencyMode.CAUSAL, Variant.IPA)
        cluster.fail_region(US_EAST)
        cluster.fail_region(EU_WEST)
        done = []
        app.enroll(US_WEST, "p1", "t1", done.append)
        sim.run(until=sim.now + 2_000.0)
        assert done == ["enroll"]
        assert ("p1", "t1") in cluster.replica(US_WEST).get_object(
            "enrolled"
        ).value()

    def test_partitioned_work_preserves_invariants_after_heal(self):
        sim, cluster, app = make(ConsistencyMode.CAUSAL, Variant.IPA)
        cluster.fail_region(EU_WEST)
        app.enroll(US_WEST, "p1", "t1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        cluster.heal_region(EU_WEST)
        # EU-WEST, having missed the enrolment, removes the tournament.
        app.rem_tourn(EU_WEST, "t1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        for region in (US_EAST, US_WEST):
            assert app.count_violations(region) == 0


class TestIndigoBlockedByHolderFailure:
    def test_operation_stuck_while_holder_down(self):
        sim, cluster, app = make(ConsistencyMode.INDIGO, Variant.CAUSAL)
        cluster.fail_region(US_EAST)  # holds tourn:t1
        done = []
        app.enroll(US_WEST, "p1", "t1", done.append)
        sim.run(until=sim.now + 10_000.0)
        assert done == []  # cannot acquire the reservation

    def test_operation_resumes_after_heal(self):
        sim, cluster, app = make(ConsistencyMode.INDIGO, Variant.CAUSAL)
        cluster.fail_region(US_EAST)
        done = []
        app.enroll(US_WEST, "p1", "t1", done.append)
        sim.run(until=sim.now + 5_000.0)
        assert done == []
        cluster.heal_region(US_EAST)
        # A new acquisition attempt pumps the queued transfer through.
        app.status(US_WEST, "t1", lambda _op: None)
        app.enroll(US_WEST, "p2", "t1", done.append)
        sim.run(until=sim.now + 5_000.0)
        assert "enroll" in done

    def test_strong_blocked_when_primary_down(self):
        from repro.errors import StoreError

        sim, cluster, app = make(ConsistencyMode.STRONG, Variant.CAUSAL)
        cluster.fail_region(US_EAST)  # the primary
        with pytest.raises(StoreError, match="primary"):
            app.enroll(US_WEST, "p1", "t1", lambda _op: None)
