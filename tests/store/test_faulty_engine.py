"""Durability under injected storage faults: the never-ack pin.

The robustness satellite: a durability point that *fails* -- fsync
raising, the disk filling mid-put, a torn append -- must never be
treated as durable.  :meth:`ShardedStore.sync` clears a shard's dirty
set only after the engine confirms the flush, so a failed sync leaves
every key dirty and the next durability point retries the whole
batch; these tests pin that for both durable engines, at the engine
contract level and through the store.
"""

import pytest

from repro.crdts import AWSet, Dot, EventContext
from repro.crdts.clock import VersionVector
from repro.errors import StoreError
from repro.store.engine import FaultyEngine, ShardedStore, make_engine
from repro.store.registry import TypeRegistry

DURABLE = ("file", "sqlite")


def make_registry():
    registry = TypeRegistry()
    registry.register_prefix("", AWSet)
    return registry


def make_set(*elements, origin="r"):
    obj = AWSet()
    vv = VersionVector()
    for counter, element in enumerate(elements, start=1):
        vv.entries[origin] = counter
        ctx = EventContext(dot=Dot(origin, counter), vv=vv.copy())
        obj.effect(obj.prepare_add(element), ctx)
    return obj


@pytest.fixture(params=DURABLE)
def faulty(request, tmp_path):
    inner = make_engine(request.param, path=str(tmp_path / "shard-00"))
    engine = FaultyEngine(inner)
    yield engine
    engine.close()


def reopened(engine):
    """A fresh inner-engine instance on the same storage."""
    inner = engine.inner
    inner.close()
    return type(inner)(inner.path)


def make_store(name, tmp_path):
    """A single-shard store with its engine wrapped for injection."""
    store = ShardedStore(
        "A", make_registry(), engine=name, shards=1,
        data_dir=str(tmp_path / "data"),
    )
    store.engines[0] = FaultyEngine(store.engines[0])
    return store, store.engines[0]


class TestEngineContract:
    def test_fsync_failure_surfaces_then_retry_heals(self, faulty):
        faulty.put("k", make_set("x"))
        faulty.inject_fsync_failure()
        with pytest.raises(StoreError):
            faulty.sync()
        assert faulty.injected["fsync_failures"] == 1
        # The fault was one-shot; the retry reaches the medium.
        faulty.sync()
        assert set(reopened(faulty).load()) == {"k"}

    def test_enospc_rejects_the_put(self, faulty):
        faulty.put("kept", make_set("x"))
        faulty.sync()
        faulty.inject_enospc()
        with pytest.raises(StoreError):
            faulty.put("lost", make_set("y"))
        faulty.sync()
        # Prior durable state is intact; the rejected put left nothing.
        assert set(reopened(faulty).load()) == {"kept"}


class TestStoreNeverAcks:
    @pytest.mark.parametrize("name", DURABLE)
    def test_fsync_failure_keeps_keys_dirty(self, name, tmp_path):
        store, engine = make_store(name, tmp_path)
        store.set("k", make_set("x"))
        engine.inject_fsync_failure()
        with pytest.raises(StoreError):
            store.sync()
        # The durability point failed: nothing may be considered
        # acknowledged, so the dirty set must survive for the retry.
        assert "k" in store._dirty[0]
        assert store.sync() == 1
        assert not store._dirty[0]
        assert set(reopened(engine).load()) == {"k"}

    @pytest.mark.parametrize("name", DURABLE)
    def test_enospc_keeps_keys_dirty(self, name, tmp_path):
        store, engine = make_store(name, tmp_path)
        store.set("k", make_set("x"))
        engine.inject_enospc()
        with pytest.raises(StoreError):
            store.sync()
        assert "k" in store._dirty[0]
        assert store.sync() == 1
        assert set(reopened(engine).load()) == {"k"}

    @pytest.mark.parametrize("name", DURABLE)
    def test_mid_batch_failure_retries_whole_batch(self, name, tmp_path):
        store, engine = make_store(name, tmp_path)
        for key in ("a", "b", "c"):
            store.set(key, make_set(key))
        # sorted(dirty) puts a, b, c; the second put hits the wall.
        engine.inject_enospc()
        engine._enospc_puts = 0  # re-arm precisely: fail put #2 only
        real_put = engine.put
        calls = {"n": 0}

        def flaky_put(key, obj):
            calls["n"] += 1
            if calls["n"] == 2:
                raise StoreError("injected ENOSPC mid-batch")
            real_put(key, obj)

        engine.put = flaky_put
        with pytest.raises(StoreError):
            store.sync()
        # All three stay dirty -- even 'a', whose put succeeded but
        # whose durability point (the shard's sync) never completed.
        assert store._dirty[0] == {"a", "b", "c"}
        engine.put = real_put
        assert store.sync() == 3
        assert set(reopened(engine).load()) == {"a", "b", "c"}

    def test_torn_write_repairs_to_prior_state(self, tmp_path):
        store, engine = make_store("file", tmp_path)
        store.set("kept", make_set("x"))
        store.sync()
        store.set("torn", make_set("y"))
        engine.inject_torn_write()
        store.sync()  # half the frame hits the disk, silently
        assert engine.injected["torn_writes"] == 1
        # Reload repairs the tail exactly like crash-mid-append:
        # the torn frame is gone, the prior state is whole.
        assert set(reopened(engine).load()) == {"kept"}
