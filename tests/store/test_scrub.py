"""Scrubbing: mid-log corruption detected, repaired, or quarantined.

The robustness satellite, per engine: flip a bit in a *non-final*
persisted record and the scrubber must find it (tail repair alone
cannot -- that only covers crash-mid-append damage at the very end),
then heal from the cheapest trustworthy source.  With the object live
in memory the repair is a re-persist; with the object gone locally it
is a clone from a peer whose version vector dominates ours -- and the
repaired engine's digest must come back *byte-identical* to the
donor's.  With no trustworthy source at all the key is quarantined,
loudly, never silently resurrected.

File-engine damage here flips a bit of a frame's stored *CRC*: the
body stays readable, so attribution is deterministic (a body flip may
or may not survive unpickling, depending on which byte rots).  The
body-flip path -- unattributable damage widening the quarantine -- is
pinned separately by :class:`TestUnattributedDamage`.
"""

import pickle

import pytest

from repro.crdts import AWSet
from repro.net import commitlog
from repro.obs import REGISTRY
from repro.store.engine import ENGINE_NAMES, FaultyEngine, FileEngine
from repro.store.registry import TypeRegistry
from repro.store.replica import Replica
from repro.store.scrub import scrub_replica

KEYS = ("alpha", "beta", "gamma")
TARGET = "beta"  # always damaged at a non-final persisted record


def make_registry():
    registry = TypeRegistry()
    registry.register_prefix("", AWSet)
    return registry


def persist(replica):
    """Feed the engines at a durability point, whatever the engine.

    The memory engine is volatile redundancy: the store never routes
    dirty keys to it, so corruption tests hand it objects directly.
    """
    store = replica.storage
    if store.durable:
        store.sync()
    else:
        for key, obj in store.maps[0].items():
            store.engines[0].put(key, obj)


def build_pair(name, tmp_path):
    """Replica A plus peer B holding identical, fully persisted state.

    Two durability rounds, so ``TARGET`` and ``gamma`` have an older
    frame *and* a newer one in the file engine's log: the newest
    ``TARGET`` record sits mid-log (gamma's second frame follows it),
    and the older good frame lets damage there be attributed.
    """
    registry = make_registry()
    a = Replica(
        "A", registry, engine=name, shards=1,
        data_dir=str(tmp_path / "a"),
    )
    b = Replica(
        "B", registry, engine=name, shards=1,
        data_dir=str(tmp_path / "b"),
    )

    def commit(key, element):
        txn = a.begin()
        txn.update(key, lambda s: s.prepare_add(element))
        b.apply_remote(txn.commit())

    for i, key in enumerate(KEYS):
        commit(key, f"e{i}")
    persist(a)
    persist(b)
    commit(TARGET, "second")
    commit("gamma", "third")
    persist(a)
    persist(b)
    return a, b, registry


def newest_frame_offset(path, key):
    frames, _damage = commitlog.scan_frames(path)
    target = None
    for offset, _end, body in frames:
        frame_key, _obj = pickle.loads(body)
        if frame_key == key:
            target = offset
    assert target is not None, f"no frame for {key!r}"
    return target, frames[-1][0]


def corrupt(replica, key):
    """Rot ``key``'s newest persisted copy, deterministically."""
    engine = replica.storage.engines[0]
    if isinstance(engine, FileEngine):
        engine.sync()
        offset, final = newest_frame_offset(engine.path, key)
        assert offset < final, f"{key!r} must not be the final record"
        with open(engine.path, "r+b") as fh:
            fh.seek(offset + 4)  # the frame's stored-CRC field
            byte = fh.read(1)[0]
            fh.seek(offset + 4)
            fh.write(bytes([byte ^ 1]))
    else:
        FaultyEngine(engine).corrupt(key, seed=5)


def drop_live(replica, key):
    """Lose the live copy (a recovery that rebuilt without the key)."""
    replica.storage.maps[0].pop(key)
    replica.storage._dirty[0].discard(key)


@pytest.fixture(params=ENGINE_NAMES)
def engine_name(request):
    return request.param


class TestScrub:
    def test_clean_store_scrubs_clean(self, engine_name, tmp_path):
        a, _b, _registry = build_pair(engine_name, tmp_path)
        report = scrub_replica(a)
        assert report.clean
        assert report.healed
        assert report.keys_checked >= len(KEYS)

    def test_midlog_corruption_repaired_from_live(
        self, engine_name, tmp_path
    ):
        a, _b, registry = build_pair(engine_name, tmp_path)
        before = a.storage.engines[0].digest(registry)
        corrupt(a, TARGET)
        report = scrub_replica(a)
        assert TARGET in report.corrupt
        assert TARGET in report.repaired_live
        assert report.healed
        assert not report.quarantined
        # Repair rewrote the shard: physically clean, logically equal.
        assert a.storage.engines[0].verify().clean
        assert a.storage.engines[0].digest(registry) == before

    def test_repair_from_peer_restores_identical_digest(
        self, engine_name, tmp_path
    ):
        a, b, registry = build_pair(engine_name, tmp_path)
        corrupt(a, TARGET)
        drop_live(a, TARGET)
        report = scrub_replica(a, peers=[b])
        assert TARGET in report.repaired_peer
        assert report.healed
        assert a.storage.engines[0].verify().clean
        # Byte-identical persisted fingerprints: the clone restored
        # exactly what the donor holds.
        assert (
            a.storage.engines[0].digest(registry)
            == b.storage.engines[0].digest(registry)
        )
        # Engine-only repair: the live map must NOT get the clone --
        # anti-entropy will redeliver those effects as records.
        assert a.storage.get(TARGET) is None

    def test_no_source_quarantines_loudly(self, engine_name, tmp_path):
        a, _b, _registry = build_pair(engine_name, tmp_path)
        quarantined_before = REGISTRY.counter(
            "store.scrub.quarantined"
        ).value
        corrupt(a, TARGET)
        drop_live(a, TARGET)
        report = scrub_replica(a)
        assert TARGET in report.quarantined
        assert not report.healed
        assert (
            REGISTRY.counter("store.scrub.quarantined").value
            > quarantined_before
        )
        # The damage itself is still gone: quarantine drops the rotten
        # copy from the persisted state instead of serving it.
        survey = a.storage.engines[0].verify()
        assert survey.clean
        assert TARGET not in survey.objects

    def test_non_dominating_peer_is_not_trusted(
        self, engine_name, tmp_path
    ):
        a, b, _registry = build_pair(engine_name, tmp_path)
        # A commits past B: B's copy may miss updates; cloning it
        # could silently lose state, so quarantine must win.
        txn = a.begin()
        txn.update("delta", lambda s: s.prepare_add("late"))
        txn.commit()
        persist(a)
        corrupt(a, TARGET)
        drop_live(a, TARGET)
        report = scrub_replica(a, peers=[b])
        assert TARGET in report.quarantined
        assert not report.repaired_peer


class TestUnattributedDamage:
    def test_garbage_body_widens_and_still_heals(self, tmp_path):
        """A body that cannot even name its key repairs via widening.

        The damaged frame might have superseded *any* key whose newest
        good frame precedes it, so every such key is re-verified
        against a trustworthy source -- here the live map.
        """
        a, _b, registry = build_pair("file", tmp_path)
        engine = a.storage.engines[0]
        before = engine.digest(registry)
        engine.sync()
        offset, final = newest_frame_offset(engine.path, TARGET)
        assert offset < final
        frames, _damage = commitlog.scan_frames(engine.path)
        body_len = next(
            len(body) for off, _end, body in frames if off == offset
        )
        with open(engine.path, "r+b") as fh:
            fh.seek(offset + 8)  # past length + CRC: the body itself
            fh.write(b"\xff" * body_len)
        report = scrub_replica(a)
        assert report.unattributed >= 1
        # TARGET and every earlier-framed key fell under suspicion;
        # all of them healed from the live map.
        assert TARGET in report.corrupt
        assert report.corrupt == report.repaired_live
        assert report.healed
        assert engine.verify().clean
        assert engine.digest(registry) == before
