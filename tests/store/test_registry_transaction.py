"""Type registry and transaction tests."""

import pytest

from repro.errors import StoreError, TransactionError
from repro.crdts import AWSet, PNCounter
from repro.store.registry import TypeRegistry
from repro.store.replica import Replica


def registry():
    reg = TypeRegistry()
    reg.register("players", AWSet)
    reg.register_prefix("timeline:", AWSet)
    reg.register_prefix("timeline:special:", PNCounter)
    return reg


class TestTypeRegistry:
    def test_exact_match(self):
        assert isinstance(registry().create("players"), AWSet)

    def test_prefix_match(self):
        assert isinstance(registry().create("timeline:alice"), AWSet)

    def test_longest_prefix_wins(self):
        assert isinstance(
            registry().create("timeline:special:x"), PNCounter
        )

    def test_unknown_key_rejected(self):
        with pytest.raises(StoreError):
            registry().create("ghost")

    def test_copy_isolated(self):
        original = registry()
        clone = original.copy()
        clone.register("extra", PNCounter)
        with pytest.raises(StoreError):
            original.create("extra")


class TestTransaction:
    def make_replica(self):
        return Replica("A", registry())

    def test_reads_counted(self):
        txn = self.make_replica().begin()
        txn.get("players")
        txn.get("players")
        assert txn.read_count == 2

    def test_update_buffers_until_commit(self):
        replica = self.make_replica()
        txn = replica.begin()
        txn.update("players", lambda s: s.prepare_add("p1"))
        # Not yet applied: reads see the pre-state.
        assert replica.get_object("players").value() == set()
        record = txn.commit()
        assert replica.get_object("players").value() == {"p1"}
        assert record.update_count == 1

    def test_read_only_commit_returns_none(self):
        txn = self.make_replica().begin()
        txn.get("players")
        assert txn.commit() is None

    def test_atomic_multi_object_commit(self):
        replica = self.make_replica()
        txn = replica.begin()
        txn.update("players", lambda s: s.prepare_add("p1"))
        txn.update("timeline:alice", lambda s: s.prepare_add("t1"))
        record = txn.commit()
        assert record.update_count == 2
        assert record.dot.counter == 1  # one dot for the whole txn
        assert txn.updated_object_count == 2

    def test_use_after_commit_rejected(self):
        txn = self.make_replica().begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.get("players")
        with pytest.raises(TransactionError):
            txn.commit()

    def test_abort_discards(self):
        replica = self.make_replica()
        txn = replica.begin()
        txn.update("players", lambda s: s.prepare_add("p1"))
        txn.abort()
        assert replica.get_object("players").value() == set()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_add_prepared_payload(self):
        replica = self.make_replica()
        txn = replica.begin()
        payload = replica.get_object("players").prepare_add("p1")
        txn.add_prepared("players", payload)
        txn.commit()
        assert replica.get_object("players").value() == {"p1"}

    def test_charge_reads(self):
        txn = self.make_replica().begin()
        txn.charge_reads(7)
        assert txn.read_count == 7
