"""Service model, processing queue and reservation manager tests."""

import pytest

from repro.errors import ReservationError
from repro.sim.events import Simulator
from repro.sim.latency import EU_WEST, US_EAST, US_WEST, GeoLatencyModel
from repro.sim.network import Network
from repro.store.reservations import ReservationManager
from repro.store.server import ProcessingQueue, ServiceModel


class TestServiceModel:
    def test_cost_composition(self):
        model = ServiceModel(
            base_ms=1.0, per_update_ms=0.1, per_object_ms=0.5,
            per_read_ms=0.2,
        )
        assert model.cost(reads=2, updates=3, objects=2) == pytest.approx(
            1.0 + 0.4 + 0.3 + 1.0
        )


class TestProcessingQueue:
    def test_sequential_service(self):
        sim = Simulator()
        queue = ProcessingQueue(sim, workers=1)
        finished = []
        for index in range(3):
            queue.submit(
                lambda: 10.0, lambda i=index: finished.append((i, sim.now))
            )
        sim.run()
        assert [time for _i, time in finished] == [10.0, 20.0, 30.0]
        assert queue.processed == 3

    def test_parallel_workers(self):
        sim = Simulator()
        queue = ProcessingQueue(sim, workers=2)
        finished = []
        for index in range(2):
            queue.submit(lambda: 10.0, lambda: finished.append(sim.now))
        sim.run()
        assert finished == [10.0, 10.0]

    def test_run_executes_at_dispatch_time(self):
        sim = Simulator()
        queue = ProcessingQueue(sim, workers=1)
        state = []
        queue.submit(lambda: (state.append(sim.now), 5.0)[1], lambda: None)
        queue.submit(lambda: (state.append(sim.now), 5.0)[1], lambda: None)
        sim.run()
        assert state == [0.0, 5.0]

    def test_depth_tracking(self):
        sim = Simulator()
        queue = ProcessingQueue(sim, workers=1)
        for _ in range(5):
            queue.submit(lambda: 1.0, lambda: None)
        assert queue.max_depth >= 4
        sim.run()
        assert queue.depth == 0


def manager():
    sim = Simulator()
    network = Network(sim, GeoLatencyModel(jitter=0.0))
    mgr = ReservationManager(sim, network)
    mgr.register("res", US_EAST)
    return sim, mgr


class TestReservationManager:
    def test_local_acquire_immediate(self):
        sim, mgr = manager()
        fired = []
        mgr.acquire(US_EAST, ("res",), lambda: fired.append(sim.now))
        assert fired == [0.0]

    def test_remote_acquire_costs_round_trip(self):
        sim, mgr = manager()
        fired = []
        mgr.acquire(US_WEST, ("res",), lambda: fired.append(sim.now))
        sim.run()
        assert fired == [80.0]
        assert mgr.holder_of("res") == US_WEST

    def test_second_acquire_local_after_migration(self):
        sim, mgr = manager()
        mgr.acquire(US_WEST, ("res",), lambda: None)
        sim.run()
        fired = []
        mgr.acquire(US_WEST, ("res",), lambda: fired.append(sim.now))
        assert fired == [sim.now]

    def test_queued_transfers_serialise(self):
        sim, mgr = manager()
        times = []
        mgr.acquire(US_WEST, ("res",), lambda: times.append(sim.now))
        mgr.acquire(EU_WEST, ("res",), lambda: times.append(sim.now))
        sim.run()
        assert times[0] == pytest.approx(80.0)
        # Second transfer goes US_WEST -> EU_WEST: +160 RTT.
        assert times[1] == pytest.approx(240.0)

    def test_multiple_reservations_acquired_in_order(self):
        sim = Simulator()
        network = Network(sim, GeoLatencyModel(jitter=0.0))
        mgr = ReservationManager(sim, network)
        mgr.register("r1", US_EAST)
        mgr.register("r2", US_WEST)
        fired = []
        mgr.acquire(EU_WEST, ("r2", "r1"), lambda: fired.append(sim.now))
        sim.run()
        # r1 first (sorted): 80 RTT, then r2: 160 RTT.
        assert fired == [pytest.approx(240.0)]
        assert mgr.holder_of("r1") == EU_WEST
        assert mgr.holder_of("r2") == EU_WEST

    def test_unknown_reservation(self):
        sim, mgr = manager()
        with pytest.raises(ReservationError):
            mgr.acquire(US_EAST, ("ghost",), lambda: None)

    def test_unavailable_holder_blocks(self):
        """Paper §5.2.5: if the holder is down, the op cannot execute."""
        sim, mgr = manager()
        mgr.mark_unavailable(US_EAST)
        fired = []
        mgr.acquire(US_WEST, ("res",), lambda: fired.append(sim.now))
        sim.run(until=10_000.0)
        assert fired == []
        # Healing lets the queued acquisition proceed.
        mgr.mark_available(US_EAST)
        mgr.acquire(US_WEST, ("res",), lambda: fired.append(sim.now))
        sim.run()
        assert len(fired) >= 1

    def test_transfer_counter(self):
        sim, mgr = manager()
        mgr.acquire(US_WEST, ("res",), lambda: None)
        sim.run()
        mgr.acquire(US_WEST, ("res",), lambda: None)
        assert mgr.transfers == 1
