"""Causal-stability GC integration tests (§4.2.1)."""

from repro.crdts import ORMap, Pattern, RWSet
from repro.crdts.lww import LWWRegister
from repro.sim.events import Simulator
from repro.sim.latency import EU_WEST, REGIONS, US_EAST, US_WEST
from repro.store.cluster import Cluster
from repro.store.registry import TypeRegistry


def make_cluster():
    registry = TypeRegistry()
    registry.register("rwset", RWSet)
    registry.register(
        "entities", lambda: ORMap(lambda: LWWRegister())
    )
    sim = Simulator()
    return sim, Cluster(sim, registry)


class TestStabilityService:
    def test_pattern_tombstones_collected_when_stable(self):
        sim, cluster = make_cluster()
        cluster.start_stability_service(interval_ms=500.0)

        def clear(txn):
            txn.update(
                "rwset",
                lambda s: s.prepare_remove_where(Pattern.of("*", "t1")),
            )
            return "clear"

        cluster.submit(US_EAST, clear, lambda _op: None)
        sim.run(until=sim.now + 100.0)
        # Before replication completes the tombstone is not stable.
        east = cluster.replica(US_EAST).get_object("rwset")
        assert east._pattern_tombstones
        sim.run(until=sim.now + 3_000.0)
        assert not east._pattern_tombstones
        for region in (US_WEST, EU_WEST):
            obj = cluster.replica(region).get_object("rwset")
            assert not obj._pattern_tombstones

    def test_gc_does_not_change_visibility(self):
        sim, cluster = make_cluster()
        cluster.start_stability_service(interval_ms=500.0)

        def add(txn):
            txn.update("rwset", lambda s: s.prepare_add(("p1", "t2")))
            txn.update(
                "rwset",
                lambda s: s.prepare_remove_where(Pattern.of("*", "t1")),
            )
            return "mix"

        cluster.submit(US_EAST, add, lambda _op: None)
        sim.run(until=sim.now + 3_000.0)
        for region in REGIONS:
            value = cluster.replica(region).get_object("rwset").value()
            assert value == {("p1", "t2")}

    def test_partition_blocks_stability(self):
        """A partitioned replica pins the stable vector (no GC)."""
        sim, cluster = make_cluster()
        cluster.start_stability_service(interval_ms=500.0)
        cluster.fail_region(EU_WEST)

        def clear(txn):
            txn.update(
                "rwset",
                lambda s: s.prepare_remove_where(Pattern.of("*", "t1")),
            )
            return "clear"

        cluster.submit(US_EAST, clear, lambda _op: None)
        sim.run(until=sim.now + 5_000.0)
        east = cluster.replica(US_EAST).get_object("rwset")
        assert east._pattern_tombstones  # eu-west never confirmed

    def test_ormap_tombstoned_payloads_collected(self):
        sim, cluster = make_cluster()
        cluster.start_stability_service(interval_ms=500.0)

        def put(txn):
            txn.update(
                "entities",
                lambda m: m.prepare_update(
                    "alice", lambda r: r.prepare_write("Alice"),
                ),
            )
            return "put"

        def remove(txn):
            txn.update("entities", lambda m: m.prepare_remove("alice"))
            return "remove"

        cluster.submit(US_EAST, put, lambda _op: None)
        sim.run(until=sim.now + 1_500.0)
        cluster.submit(US_EAST, remove, lambda _op: None)
        sim.run(until=sim.now + 3_000.0)
        for region in REGIONS:
            entities = cluster.replica(region).get_object("entities")
            assert entities.peek("alice") is None

    def test_service_idempotent_start(self):
        sim, cluster = make_cluster()
        cluster.start_stability_service(interval_ms=500.0)
        cluster.start_stability_service(interval_ms=500.0)
        sim.run(until=sim.now + 1_200.0)
        # Exactly one schedule alive (1 pending tick).
        assert sim.pending == 1
