"""Storage engine contract and sharded-store unit tests.

Every engine implements one durability contract (stage puts, make them
durable on sync, reload after a process death, replace wholesale on
checkpoint); the :class:`~repro.store.engine.ShardedStore` splits a
replica's keyspace over N of them with deterministic consistent
hashing.  These tests pin the contract per engine, the ring's
cross-process stability, and the store's routing/snapshot/durability
behaviour -- the equivalence suites then show the digests cannot tell
any configuration apart.
"""

import pickle
import subprocess
import sys

import pytest

from repro.crdts import AWSet, Dot, EventContext
from repro.crdts.clock import VersionVector
from repro.errors import StoreError
from repro.net import commitlog
from repro.store.engine import (
    ENGINE_NAMES,
    FileEngine,
    HashRing,
    MemoryEngine,
    ShardedStore,
    SqliteEngine,
    default_engine,
    default_shards,
    make_engine,
    shard_map_digest,
)
from repro.store.registry import TypeRegistry


def make_registry() -> TypeRegistry:
    registry = TypeRegistry()
    registry.register_prefix("", AWSet)
    return registry


def make_set(*elements, origin="r"):
    """An AWSet holding ``elements``, built from real effect calls."""
    obj = AWSet()
    vv = VersionVector()
    for counter, element in enumerate(elements, start=1):
        vv.entries[origin] = counter
        ctx = EventContext(dot=Dot(origin, counter), vv=vv.copy())
        obj.effect(obj.prepare_add(element), ctx)
    return obj


@pytest.fixture
def engine(request, tmp_path):
    name = request.param
    built = make_engine(name, path=str(tmp_path / "shard-00"))
    yield built
    built.close()


def reopen(engine):
    """A fresh engine instance on the same storage (process restart)."""
    if isinstance(engine, MemoryEngine):
        return engine
    engine.close()
    cls = type(engine)
    return cls(engine.path)


class TestHashRing:
    def test_single_shard_routes_everything_to_zero(self):
        ring = HashRing(1)
        assert all(ring.shard_of(f"k{i}") == 0 for i in range(100))

    def test_deterministic_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        keys = [f"key-{i}" for i in range(200)]
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]

    def test_every_shard_owns_a_fair_slice(self):
        ring = HashRing(4)
        counts = [0, 0, 0, 0]
        for i in range(2000):
            counts[ring.shard_of(f"key-{i}")] += 1
        assert all(count > 2000 * 0.10 for count in counts), counts

    def test_routing_survives_hash_randomisation(self):
        """blake2b, not builtin hash(): placement must be identical in
        a process with a different PYTHONHASHSEED, or recovery would
        look for keys in the wrong shard's log."""
        script = (
            "from repro.store.engine import HashRing\n"
            "ring = HashRing(8)\n"
            "print([ring.shard_of(f'key-{i}') for i in range(64)])\n"
        )
        import os

        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        outs = set()
        for hashseed in ("0", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={**os.environ, "PYTHONHASHSEED": hashseed, "PYTHONPATH": src},
                check=True,
            )
            outs.add(proc.stdout)
        assert len(outs) == 1
        local = HashRing(8)
        assert outs.pop().strip() == str([local.shard_of(f"key-{i}") for i in range(64)])

    def test_rejects_zero_shards(self):
        with pytest.raises(StoreError):
            HashRing(0)


@pytest.mark.parametrize("engine", ENGINE_NAMES, indirect=True)
class TestEngineContract:
    def test_put_sync_load_roundtrip(self, engine):
        a, b = make_set("x", "y"), make_set("z")
        engine.put("ka", a)
        engine.put("kb", b)
        engine.sync()
        loaded = engine.load()
        assert set(loaded) == {"ka", "kb"}
        assert loaded["ka"].value() == {"x", "y"}
        assert loaded["kb"].value() == {"z"}
        assert engine.get("ka").value() == {"x", "y"}
        assert engine.get("missing") is None
        assert dict(engine.iterate()).keys() == {"ka", "kb"}

    def test_last_put_wins(self, engine):
        engine.put("k", make_set("old"))
        engine.put("k", make_set("new", "er"))
        engine.sync()
        assert engine.load()["k"].value() == {"new", "er"}

    def test_restore_replaces_wholesale(self, engine):
        engine.put("stale", make_set("gone"))
        engine.sync()
        engine.restore({"fresh": make_set("kept")})
        loaded = engine.load()
        assert set(loaded) == {"fresh"}
        assert loaded["fresh"].value() == {"kept"}

    def test_digest_matches_shard_map_digest(self, engine):
        objects = {"ka": make_set("x"), "kb": make_set("y", "z")}
        engine.restore(objects)
        registry = make_registry()
        assert engine.digest(registry) == shard_map_digest(objects, registry, {})

    def test_survives_reopen_iff_durable(self, engine):
        engine.put("k", make_set("v"))
        engine.sync()
        again = reopen(engine)
        try:
            if engine.durable:
                assert again.load()["k"].value() == {"v"}
            else:
                assert again.load()["k"].value() == {"v"}  # same process
        finally:
            if again is not engine:
                again.close()


class TestFileEngine:
    def test_unsynced_tail_frame_is_repaired(self, tmp_path):
        engine = FileEngine(str(tmp_path / "s.objlog"))
        engine.put("k", make_set("v"))
        engine.sync()
        engine.close()
        # A crash mid-append leaves a torn final frame.
        with open(engine.path, "ab") as fh:
            fh.write(commitlog.frame(pickle.dumps(("k2", 1)))[:-3])
        loaded = engine.load()
        assert set(loaded) == {"k"}
        # Repaired in place: a second load sees a clean log.
        assert set(engine.load()) == {"k"}
        engine.close()

    def test_unpicklable_final_body_is_skipped(self, tmp_path):
        engine = FileEngine(str(tmp_path / "s.objlog"))
        engine.put("k", make_set("v"))
        engine.sync()
        engine.close()
        with open(engine.path, "ab") as fh:
            fh.write(commitlog.frame(b"not a pickle"))
        assert set(engine.load()) == {"k"}
        engine.close()

    def test_unreadable_mid_log_body_raises(self, tmp_path):
        engine = FileEngine(str(tmp_path / "s.objlog"))
        engine.close()
        with open(engine.path, "wb") as fh:
            fh.write(commitlog.frame(b"not a pickle"))
            fh.write(commitlog.frame(pickle.dumps(("k", make_set("v")))))
        with pytest.raises(StoreError, match="unreadable object"):
            engine.load()
        engine.close()

    def test_restore_compacts_superseded_frames(self, tmp_path):
        import os

        engine = FileEngine(str(tmp_path / "s.objlog"))
        obj = make_set("v")
        for _ in range(50):
            engine.put("k", obj)
        engine.sync()
        grown = os.path.getsize(engine.path)
        engine.restore({"k": obj})
        assert os.path.getsize(engine.path) < grown
        assert set(engine.load()) == {"k"}
        engine.close()


class TestSqliteEngine:
    def test_puts_invisible_until_sync(self, tmp_path):
        """A crash before sync loses staged puts: the durability point
        is the transaction commit, exactly like the store's."""
        import sqlite3

        engine = SqliteEngine(str(tmp_path / "s.db"))
        engine.put("k", make_set("v"))
        other = sqlite3.connect(engine.path)
        assert other.execute("SELECT COUNT(*) FROM kv").fetchone()[0] == 0
        engine.sync()
        assert other.execute("SELECT COUNT(*) FROM kv").fetchone()[0] == 1
        other.close()
        engine.close()


class TestEngineFactory:
    def test_durable_engines_need_a_path(self):
        for name in ("file", "sqlite"):
            with pytest.raises(StoreError, match="data path"):
                make_engine(name)

    def test_unknown_engine_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="unknown storage engine"):
            make_engine("rocksdb", path=str(tmp_path / "x"))


class TestEnvDefaults:
    def test_engine_and_shards_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "sqlite")
        monkeypatch.setenv("REPRO_SHARDS", "5")
        assert default_engine() == "sqlite"
        assert default_shards() == 5
        store = ShardedStore("r", make_registry())
        try:
            assert store.engine_name == "sqlite"
            assert store.n_shards == 5
        finally:
            store.close()

    def test_defaults_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert default_engine() == "memory"
        assert default_shards() == 1

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "leveldb")
        with pytest.raises(StoreError):
            default_engine()
        monkeypatch.setenv("REPRO_SHARDS", "zero")
        with pytest.raises(StoreError):
            default_shards()
        monkeypatch.setenv("REPRO_SHARDS", "0")
        with pytest.raises(StoreError):
            default_shards()


class TestShardedStore:
    def make(self, shards, engine="memory", **kwargs):
        return ShardedStore("r", make_registry(), engine=engine, shards=shards, **kwargs)

    def test_single_shard_hot_path_is_the_dict(self):
        store = self.make(1)
        assert store.get == store.maps[0].get
        store.set("k", make_set("v"))
        assert store.contains("k")
        assert store.get("k").value() == {"v"}
        store.close()

    def test_routing_spreads_and_reads_back(self):
        store = self.make(4)
        keys = [f"key-{i}" for i in range(100)]
        for key in keys:
            store.set(key, make_set(key))
        assert store.keys() == sorted(keys)
        assert store.key_count() == 100
        assert all(store.contains(key) for key in keys)
        assert all(store.get(key).value() == {key} for key in keys)
        assert sum(1 for m in store.maps if m) == 4  # all shards used
        store.close()

    def test_snapshot_shards_are_clones(self):
        store = self.make(3)
        store.set("k", make_set("old"))
        snap = store.snapshot_shards()
        store.get("k").effect(
            store.get("k").prepare_add("new"),
            EventContext(dot=Dot("r", 9), vv=VersionVector({"r": 9})),
        )
        merged = {}
        for shard_map in snap:
            merged.update(shard_map)
        assert merged["k"].value() == {"old"}
        store.close()

    def test_restore_reroutes_across_shard_counts(self):
        source = self.make(3)
        keys = [f"key-{i}" for i in range(60)]
        for key in keys:
            source.set(key, make_set(key))
        target = self.make(5)
        target.restore_shards(source.snapshot_shards())
        assert target.keys() == sorted(keys)
        assert all(target.get(key).value() == {key} for key in keys)
        # Same content, different placement -- the per-shard digests
        # differ but the flat key -> value mapping is identical.
        source.close()
        target.close()

    def test_restore_none_keeps_local_shard(self):
        store = self.make(2)
        store.set("a", make_set("1"))
        snap = store.snapshot_shards()
        kept = [dict(m) for m in store.maps]
        store.restore_shards((None,) * 2)
        assert [dict(m) for m in store.maps] == kept
        store.restore_shards(tuple(snap))
        assert store.get("a").value() == {"1"}
        store.close()

    @pytest.mark.parametrize("engine", ["file", "sqlite"])
    def test_sync_persists_dirty_keys(self, engine, tmp_path):
        store = self.make(2, engine=engine, data_dir=str(tmp_path))
        store.set("k1", make_set("a"))
        store.set("k2", make_set("b"))
        assert store.sync() == 2
        persisted = {}
        for shard_map in store.load_persisted():
            persisted.update(shard_map)
        assert {k: o.value() for k, o in persisted.items()} == {
            "k1": {"a"},
            "k2": {"b"},
        }
        # Nothing dirty: the next sync writes nothing.
        assert store.sync() == 0
        # In-place mutation + note_write re-dirties the key.
        store.get("k1").effect(
            store.get("k1").prepare_add("z"),
            EventContext(dot=Dot("r", 7), vv=VersionVector({"r": 7})),
        )
        store.note_write("k1")
        assert store.sync() == 1
        store.close()

    @pytest.mark.parametrize("engine", ["file", "sqlite"])
    def test_checkpoint_survives_restart(self, engine, tmp_path):
        store = self.make(3, engine=engine, data_dir=str(tmp_path))
        keys = [f"key-{i}" for i in range(30)]
        for key in keys:
            store.set(key, make_set(key))
        store.checkpoint()
        store.close()
        revived = self.make(3, engine=engine, data_dir=str(tmp_path))
        merged = {}
        for shard_map in revived.load_persisted():
            merged.update(shard_map)
        assert {k: o.value() for k, o in merged.items()} == {key: {key} for key in keys}
        revived.close()

    def test_shard_digests_agree_for_equal_content(self):
        a, b = self.make(4), self.make(4)
        for key in (f"key-{i}" for i in range(40)):
            a.set(key, make_set(key))
            b.set(key, make_set(key))
        assert a.shard_digests() == b.shard_digests()
        b.set("key-0", make_set("key-0", "extra"))
        assert a.shard_digests() != b.shard_digests()
        a.close()
        b.close()

    def test_stats_shape(self):
        store = self.make(2)
        store.set("k", make_set("v"))
        stats = store.stats()
        assert stats["store.shard.count"] == 2
        assert stats["store.shard.keys_total"] == 1
        assert stats["store.shard.keys_max"] == 1
        store.close()

    def test_durable_store_without_data_dir_owns_scratch(self):
        store = self.make(2, engine="sqlite")
        tmpdir = store._tmpdir
        assert tmpdir is not None
        store.set("k", make_set("v"))
        store.sync()
        store.close()
        import os

        assert not os.path.exists(tmpdir.name)
