"""Convergence under adversarial delivery.

Property-style check of the convergence contract the whole system
leans on: for a fixed set of commit records, *any* delivery
permutation, with arbitrary duplication, yields the same final CRDT
state and version vector at every replica -- the causal receiver
buffers out-of-order records, discards duplicates, and the CRDT merge
functions are order-insensitive for concurrent events.

The record set mixes per-origin chains, cross-origin dependencies and
genuinely concurrent add/remove pairs (the rem-wins battleground), and
the schedule space is swept exhaustively for small sets plus a seeded
random sweep for larger ones.
"""

import itertools
import random

from repro.crdts import AWSet, RWSet
from repro.crdts.counter import PNCounter
from repro.store.registry import TypeRegistry
from repro.store.replica import Replica
from repro.store.replication import CausalReceiver


def registry():
    reg = TypeRegistry()
    reg.register("aw", AWSet)
    reg.register("rw", RWSet)
    reg.register("ctr", PNCounter)
    return reg


def commit(replica, key, prepare):
    txn = replica.begin()
    txn.update(key, prepare)
    return txn.commit()


def build_history():
    """Three origins, seven records, chains + concurrency.

    Returns the records plus the state fingerprint of an origin that
    saw everything (the expected convergence point).
    """
    a = Replica("A", registry())
    b = Replica("B", registry())
    c = Replica("C", registry())
    records = []
    r1 = commit(a, "aw", lambda s: s.prepare_add("x"))
    records.append(r1)
    # B observes A's first commit: a cross-origin dependency.
    b.apply_remote(r1)
    records.append(commit(b, "aw", lambda s: s.prepare_add("y")))
    # Concurrent add/remove on the rem-wins set (C never saw A or B).
    records.append(commit(c, "rw", lambda s: s.prepare_add("z")))
    records.append(commit(a, "rw", lambda s: s.prepare_remove("z")))
    # Per-origin chains and a counter.
    records.append(commit(a, "ctr", lambda s: s.prepare_add(3)))
    records.append(commit(b, "ctr", lambda s: s.prepare_add(-1)))
    records.append(commit(c, "aw", lambda s: s.prepare_add("w")))
    return records


def fingerprint(replica):
    return (
        sorted(replica.get_object("aw").value()),
        sorted(replica.get_object("rw").value()),
        replica.get_object("ctr").value(),
        tuple(sorted(replica.vv.entries.items())),
    )


def deliver_all(schedule):
    fresh = Replica("D", registry())
    receiver = CausalReceiver(fresh)
    for record in schedule:
        receiver.receive(record)
    assert receiver.pending_count == 0, "schedule did not fully drain"
    return fingerprint(fresh)


class TestAdversarialDelivery:
    def test_all_permutations_of_core_records_converge(self):
        records = build_history()
        core = records[:5]
        expected = deliver_all(core)
        seen = set()
        for schedule in itertools.permutations(core):
            fp = deliver_all(schedule)
            seen.add(repr(fp))
            assert fp == expected
        assert len(seen) == 1

    def test_random_permutations_with_duplication_converge(self):
        records = build_history()
        expected = deliver_all(records)
        rng = random.Random(97)
        for _ in range(200):
            schedule = list(records)
            rng.shuffle(schedule)
            # Duplicate a random sample, injected at random positions:
            # once as an immediate re-send, once as a stale straggler.
            for dup in rng.sample(records, k=rng.randint(1, len(records))):
                schedule.insert(rng.randrange(len(schedule) + 1), dup)
            assert deliver_all(schedule) == expected

    def test_every_replica_converges_pairwise(self):
        """Two receivers fed opposite-order schedules agree."""
        records = build_history()
        forward = deliver_all(records)
        backward = deliver_all(list(reversed(records)))
        assert forward == backward

    def test_duplicates_counted_not_applied(self):
        records = build_history()
        fresh = Replica("D", registry())
        receiver = CausalReceiver(fresh)
        for record in records:
            receiver.receive(record)
        applied = fresh.commits_applied
        for record in records:
            receiver.receive(record)
        assert fresh.commits_applied == applied
        assert receiver.duplicates_ignored == len(records)
