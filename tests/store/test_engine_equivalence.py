"""Behavioural identity across storage engines and shard counts.

The acceptance bar for pluggable storage: engines and sharding are
*durability* choices, never *semantics* choices.  For any workload --
including seeded fault plans with drops, duplication, reordering, a
partition and a crash/recovery window -- every replica must converge
to byte-identical state digests whatever the engine (memory, file,
sqlite) and whatever the shard count ({1, 3, 8}).

The scripted add-only schedule is fixed up-front from the seed (same
trick as the batching equivalence suite), so the committed-record set
is identical across configurations; the digests then compare the full
pipeline -- routing, note_write tracking, per-shard snapshots and
recovery -- against the historical single-dict behaviour.

Kill-mid-commit is pinned per durable engine at the torn-write level:
a crash half-way through an engine append must reload to exactly the
last durability point, and a replica rebuilt from its commit log after
the tear must reproduce the pre-crash digest.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crdts import AWSet
from repro.errors import StoreError
from repro.sim.events import Simulator
from repro.sim.faults import CrashWindow, FaultPlan, PartitionWindow
from repro.sim.latency import EU_WEST, REGIONS, US_EAST, US_WEST, GeoLatencyModel
from repro.store.cluster import Cluster, replica_state_digest
from repro.store.registry import TypeRegistry

ENGINES = ("memory", "file", "sqlite")
SHARD_COUNTS = (1, 3, 8)


def make_registry() -> TypeRegistry:
    registry = TypeRegistry()
    registry.register_prefix("", AWSet)
    return registry


def add_op(key, element):
    def body(txn):
        txn.update(key, lambda s: s.prepare_add(element))
        return "add"

    return body


def chaos_plan(seed):
    return FaultPlan(
        seed=seed,
        drop=0.20,
        duplicate=0.10,
        reorder=0.15,
        reorder_delay_ms=100.0,
        partitions=(
            PartitionWindow(1_500.0, 3_000.0, (US_EAST,), (US_WEST, EU_WEST)),
        ),
        crashes=(CrashWindow(EU_WEST, 3_500.0, 4_500.0),),
    )


def scripted_run(engine, shards, seed=7, n_ops=60, faults=None):
    """A fixed seeded schedule on one engine/shard configuration."""
    sim = Simulator()
    cluster = Cluster(
        sim,
        make_registry(),
        latency=GeoLatencyModel(jitter=0.0),
        faults=faults,
        engine=engine,
        shards=shards,
    )
    if faults is not None:
        cluster.start_antientropy(interval_ms=200.0, seed=seed + 1)
    rng = random.Random(seed)
    blocked = []
    for i in range(n_ops):
        when = 100.0 + i * 40.0 + rng.random() * 20.0
        region = REGIONS[rng.randrange(len(REGIONS))]
        key = f"k{rng.randrange(12)}"
        element = f"e{i}"

        def submit(region=region, key=key, element=element):
            try:
                cluster.submit(region, add_op(key, element), lambda _op: None)
            except StoreError:
                blocked.append(element)

        sim.at(when, submit)
    sim.run(until=100.0 + n_ops * 60.0 + 2_000.0)
    elapsed = cluster.run_until_converged(timeout_ms=120_000.0)
    assert elapsed is not None, "run failed to converge"
    return cluster, blocked


class TestEngineShardMatrix:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_chaos_digests_identical_to_reference(self, engine, shards):
        """Drops, a partition and a crash/recovery window: every
        engine x shard configuration lands on the reference digest."""
        reference, blocked_ref = scripted_run("memory", 1, faults=chaos_plan(7))
        expected = reference.state_digest()
        assert len(set(expected.values())) == 1
        if engine == "memory" and shards == 1:
            return  # the reference itself
        run, blocked = scripted_run(engine, shards, faults=chaos_plan(7))
        assert blocked == blocked_ref
        assert run.state_digest() == expected
        for region in REGIONS:
            assert run.replica(region).vv.entries == reference.replica(region).vv.entries

    def test_sharded_replicas_actually_shard(self):
        run, _ = scripted_run("memory", 8)
        replica = run.replica(US_EAST)
        assert replica.n_shards == 8
        populated = sum(1 for m in replica.storage.maps if m)
        assert populated > 1
        assert len(replica.shard_digests()) == 8


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_ops=st.integers(min_value=1, max_value=30),
    engine=st.sampled_from(ENGINES),
    shards=st.sampled_from(SHARD_COUNTS),
    chaos=st.booleans(),
)
def test_any_schedule_any_engine_same_digest(seed, n_ops, engine, shards, chaos):
    """Property: for any seeded schedule (faulty or perfect), any
    engine x shard configuration converges to the digests of the
    historical memory x 1 store."""
    faults = chaos_plan(seed) if chaos else None
    reference, _ = scripted_run("memory", 1, seed=seed, n_ops=n_ops, faults=faults)
    expected = reference.state_digest()
    assert len(set(expected.values())) == 1
    run, _ = scripted_run(engine, shards, seed=seed, n_ops=n_ops, faults=faults)
    assert run.state_digest() == expected


class TestKillMidCommit:
    """Torn durable writes: recovery lands on the last durability point."""

    @pytest.mark.parametrize("shards", [1, 3])
    def test_file_engine_torn_append(self, shards):
        run, _ = scripted_run("file", shards, seed=13)
        replica = run.replica(US_EAST)
        digest = replica_state_digest(replica)
        # Durability point, then a crash half-way through a later append.
        replica.storage.checkpoint()
        persisted_digests = [e.digest(replica._registry) for e in replica.storage.engines]
        for engine in replica.storage.engines:
            engine.put("torn-key", AWSet())
            engine.close()
            with open(engine.path, "r+b") as fh:
                fh.seek(0, 2)
                fh.truncate(fh.tell() - 3)  # tear the final frame
        # Reload: the torn frame is repaired away, the checkpoint's
        # state is intact, and the replica's own recovery (commit log
        # replay) reproduces the pre-crash digest.
        assert [e.digest(replica._registry) for e in replica.storage.engines] == persisted_digests
        replica.rebuild_from_log()
        assert replica_state_digest(replica) == digest

    @pytest.mark.parametrize("shards", [1, 3])
    def test_sqlite_engine_uncommitted_staged_puts(self, shards):
        run, _ = scripted_run("sqlite", shards, seed=13)
        replica = run.replica(US_EAST)
        digest = replica_state_digest(replica)
        replica.storage.checkpoint()
        persisted_digests = [e.digest(replica._registry) for e in replica.storage.engines]
        # Stage puts but "crash" before sync: a fresh connection on the
        # same database must not see them.
        import sqlite3

        for engine in replica.storage.engines:
            engine.put("staged-key", AWSet())
            path = engine.path
            engine._conn.close()  # crash: no commit
            engine._conn = sqlite3.connect(path)
        assert [e.digest(replica._registry) for e in replica.storage.engines] == persisted_digests
        replica.rebuild_from_log()
        assert replica_state_digest(replica) == digest

    def test_memory_engine_recovers_from_log_alone(self):
        run, _ = scripted_run("memory", 3, seed=13)
        replica = run.replica(US_EAST)
        digest = replica_state_digest(replica)
        replica.rebuild_from_log()
        assert replica_state_digest(replica) == digest
