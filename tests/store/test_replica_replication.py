"""Replica and causal-delivery tests."""

import pytest

from repro.errors import StoreError
from repro.crdts import AWSet, RWSet
from repro.store.registry import TypeRegistry
from repro.store.replica import Replica
from repro.store.replication import CausalReceiver


def registry():
    reg = TypeRegistry()
    reg.register("set", AWSet)
    reg.register("rwset", RWSet)
    return reg


def make(replica_id="A"):
    return Replica(replica_id, registry())


def local_commit(replica, key, prepare):
    txn = replica.begin()
    txn.update(key, prepare)
    return txn.commit()


class TestReplica:
    def test_commit_advances_vector(self):
        replica = make()
        local_commit(replica, "set", lambda s: s.prepare_add("x"))
        assert replica.vv.get("A") == 1
        local_commit(replica, "set", lambda s: s.prepare_add("y"))
        assert replica.vv.get("A") == 2

    def test_deps_snapshot_before_commit_full_vv(self):
        replica = Replica("A", registry(), full_vv=True)
        first = local_commit(replica, "set", lambda s: s.prepare_add("x"))
        second = local_commit(replica, "set", lambda s: s.prepare_add("y"))
        assert first.deps.get("A") == 0
        assert second.deps.get("A") == 1
        assert first.deps_delta == ()

    def test_deps_delta_default_encoding(self):
        """Delta records carry only entries changed since the last commit."""
        a, b = make("A"), make("B")
        rb = local_commit(b, "set", lambda s: s.prepare_add("z"))
        a.apply_remote(rb)
        first = local_commit(a, "set", lambda s: s.prepare_add("x"))
        second = local_commit(a, "set", lambda s: s.prepare_add("y"))
        assert first.deps is None
        assert first.deps_delta == (("B", 1),)
        # Nothing remote arrived between the two commits.
        assert second.deps_delta == ()

    def test_apply_remote_in_order(self):
        a, b = make("A"), make("B")
        r1 = local_commit(a, "set", lambda s: s.prepare_add("x"))
        r2 = local_commit(a, "set", lambda s: s.prepare_add("y"))
        b.apply_remote(r1)
        b.apply_remote(r2)
        assert b.get_object("set").value() == {"x", "y"}
        assert b.vv == a.vv

    def test_out_of_order_rejected(self):
        a, b = make("A"), make("B")
        local_commit(a, "set", lambda s: s.prepare_add("x"))
        r2 = local_commit(a, "set", lambda s: s.prepare_add("y"))
        assert not b.can_apply(r2)
        with pytest.raises(StoreError):
            b.apply_remote(r2)

    def test_own_commit_not_remotely_applied(self):
        a = make("A")
        record = local_commit(a, "set", lambda s: s.prepare_add("x"))
        with pytest.raises(StoreError):
            a.apply_remote(record)

    def test_cross_origin_dependency_enforced(self):
        a, b, c = make("A"), make("B"), make("C")
        ra = local_commit(a, "set", lambda s: s.prepare_add("x"))
        b.apply_remote(ra)
        rb = local_commit(b, "set", lambda s: s.prepare_add("y"))
        # C receives B's commit (which depends on A's) first.
        assert not c.can_apply(rb)
        c.apply_remote(ra)
        assert c.can_apply(rb)
        c.apply_remote(rb)
        assert c.get_object("set").value() == {"x", "y"}

    def test_event_context_uses_origin_causality(self):
        """Rem-wins decisions must be identical at every replica even
        when the receiver knows more than the origin did."""
        a, b, c = make("A"), make("B"), make("C")
        # A removes x (concurrent with B's add).
        rem = local_commit(a, "rwset", lambda s: s.prepare_remove("x"))
        add = local_commit(b, "rwset", lambda s: s.prepare_add("x"))
        # C sees the remove first, then the add.
        c.apply_remote(rem)
        c.apply_remote(add)
        # A sees the add after its own remove.
        a.apply_remote(add)
        # B sees the remove after its own add.
        b.apply_remote(rem)
        values = [r.get_object("rwset").value() for r in (a, b, c)]
        assert values[0] == values[1] == values[2] == set()


class TestCausalReceiver:
    def test_buffers_until_deliverable(self):
        a, b = make("A"), make("B")
        receiver = CausalReceiver(b)
        r1 = local_commit(a, "set", lambda s: s.prepare_add("x"))
        r2 = local_commit(a, "set", lambda s: s.prepare_add("y"))
        receiver.receive(r2)  # arrives out of order
        assert receiver.pending_count == 1
        assert b.get_object("set").value() == set()
        receiver.receive(r1)
        assert receiver.pending_count == 0
        assert b.get_object("set").value() == {"x", "y"}

    def test_on_apply_callback(self):
        a, b = make("A"), make("B")
        applied = []
        receiver = CausalReceiver(b, on_apply=applied.append)
        record = local_commit(a, "set", lambda s: s.prepare_add("x"))
        receiver.receive(record)
        assert applied == [record]

    def test_chained_cross_origin_buffering(self):
        a, b, c = make("A"), make("B"), make("C")
        ra = local_commit(a, "set", lambda s: s.prepare_add("x"))
        b.apply_remote(ra)
        rb = local_commit(b, "set", lambda s: s.prepare_add("y"))
        receiver = CausalReceiver(c)
        receiver.receive(rb)
        assert receiver.pending_count == 1
        receiver.receive(ra)  # unlocks both
        assert receiver.pending_count == 0
        assert c.get_object("set").value() == {"x", "y"}

    def test_pending_counts_indexed_by_origin(self):
        a, b, c = make("A"), make("B"), make("C")
        local_commit(a, "set", lambda s: s.prepare_add("a1"))
        ra2 = local_commit(a, "set", lambda s: s.prepare_add("a2"))
        ra3 = local_commit(a, "set", lambda s: s.prepare_add("a3"))
        local_commit(b, "set", lambda s: s.prepare_add("b1"))
        rb2 = local_commit(b, "set", lambda s: s.prepare_add("b2"))
        receiver = CausalReceiver(c)
        # Only the out-of-order tails arrive: each origin's chain is
        # missing its head.
        receiver.receive(ra2)
        receiver.receive(ra3)
        receiver.receive(rb2)
        assert receiver.pending_count == 3
        assert receiver.pending_count_for("A") == 2
        assert receiver.pending_count_for("B") == 1
        assert receiver.pending_count_for("C") == 0
        assert receiver.pending_by_origin() == {"A": 2, "B": 1}

    def test_duplicate_records_ignored(self):
        a, b = make("A"), make("B")
        receiver = CausalReceiver(b)
        record = local_commit(a, "set", lambda s: s.prepare_add("x"))
        receiver.receive(record)
        receiver.receive(record)  # already applied
        r2 = local_commit(a, "set", lambda s: s.prepare_add("y"))
        r3 = local_commit(a, "set", lambda s: s.prepare_add("z"))
        receiver.receive(r3)  # buffered (r2 missing)
        receiver.receive(r3)  # duplicate of a buffered record
        assert receiver.duplicates_ignored == 2
        assert receiver.pending_count == 1
        receiver.receive(r2)
        assert b.get_object("set").value() == {"x", "y", "z"}
        assert b.commits_applied == 3

    def test_out_of_order_chain_drains_incrementally(self):
        """A long reversed chain drains fully once its head arrives."""
        a, b = make("A"), make("B")
        records = [
            local_commit(a, "set", lambda s, i=i: s.prepare_add(i))
            for i in range(20)
        ]
        receiver = CausalReceiver(b)
        for record in reversed(records[1:]):
            receiver.receive(record)
        assert receiver.pending_count == 19
        assert receiver.buffered_high_water == 19
        receiver.receive(records[0])
        assert receiver.pending_count == 0
        assert b.get_object("set").value() == set(range(20))
