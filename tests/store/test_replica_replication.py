"""Replica and causal-delivery tests."""

import pytest

from repro.errors import StoreError
from repro.crdts import AWSet, RWSet
from repro.store.registry import TypeRegistry
from repro.store.replica import Replica
from repro.store.replication import CausalReceiver


def registry():
    reg = TypeRegistry()
    reg.register("set", AWSet)
    reg.register("rwset", RWSet)
    return reg


def make(replica_id="A"):
    return Replica(replica_id, registry())


def local_commit(replica, key, prepare):
    txn = replica.begin()
    txn.update(key, prepare)
    return txn.commit()


class TestReplica:
    def test_commit_advances_vector(self):
        replica = make()
        local_commit(replica, "set", lambda s: s.prepare_add("x"))
        assert replica.vv.get("A") == 1
        local_commit(replica, "set", lambda s: s.prepare_add("y"))
        assert replica.vv.get("A") == 2

    def test_deps_snapshot_before_commit(self):
        replica = make()
        first = local_commit(replica, "set", lambda s: s.prepare_add("x"))
        second = local_commit(replica, "set", lambda s: s.prepare_add("y"))
        assert first.deps.get("A") == 0
        assert second.deps.get("A") == 1

    def test_apply_remote_in_order(self):
        a, b = make("A"), make("B")
        r1 = local_commit(a, "set", lambda s: s.prepare_add("x"))
        r2 = local_commit(a, "set", lambda s: s.prepare_add("y"))
        b.apply_remote(r1)
        b.apply_remote(r2)
        assert b.get_object("set").value() == {"x", "y"}
        assert b.vv == a.vv

    def test_out_of_order_rejected(self):
        a, b = make("A"), make("B")
        local_commit(a, "set", lambda s: s.prepare_add("x"))
        r2 = local_commit(a, "set", lambda s: s.prepare_add("y"))
        assert not b.can_apply(r2)
        with pytest.raises(StoreError):
            b.apply_remote(r2)

    def test_own_commit_not_remotely_applied(self):
        a = make("A")
        record = local_commit(a, "set", lambda s: s.prepare_add("x"))
        with pytest.raises(StoreError):
            a.apply_remote(record)

    def test_cross_origin_dependency_enforced(self):
        a, b, c = make("A"), make("B"), make("C")
        ra = local_commit(a, "set", lambda s: s.prepare_add("x"))
        b.apply_remote(ra)
        rb = local_commit(b, "set", lambda s: s.prepare_add("y"))
        # C receives B's commit (which depends on A's) first.
        assert not c.can_apply(rb)
        c.apply_remote(ra)
        assert c.can_apply(rb)
        c.apply_remote(rb)
        assert c.get_object("set").value() == {"x", "y"}

    def test_event_context_uses_origin_causality(self):
        """Rem-wins decisions must be identical at every replica even
        when the receiver knows more than the origin did."""
        a, b, c = make("A"), make("B"), make("C")
        # A removes x (concurrent with B's add).
        rem = local_commit(a, "rwset", lambda s: s.prepare_remove("x"))
        add = local_commit(b, "rwset", lambda s: s.prepare_add("x"))
        # C sees the remove first, then the add.
        c.apply_remote(rem)
        c.apply_remote(add)
        # A sees the add after its own remove.
        a.apply_remote(add)
        # B sees the remove after its own add.
        b.apply_remote(rem)
        values = [r.get_object("rwset").value() for r in (a, b, c)]
        assert values[0] == values[1] == values[2] == set()


class TestCausalReceiver:
    def test_buffers_until_deliverable(self):
        a, b = make("A"), make("B")
        receiver = CausalReceiver(b)
        r1 = local_commit(a, "set", lambda s: s.prepare_add("x"))
        r2 = local_commit(a, "set", lambda s: s.prepare_add("y"))
        receiver.receive(r2)  # arrives out of order
        assert receiver.pending_count == 1
        assert b.get_object("set").value() == set()
        receiver.receive(r1)
        assert receiver.pending_count == 0
        assert b.get_object("set").value() == {"x", "y"}

    def test_on_apply_callback(self):
        a, b = make("A"), make("B")
        applied = []
        receiver = CausalReceiver(b, on_apply=applied.append)
        record = local_commit(a, "set", lambda s: s.prepare_add("x"))
        receiver.receive(record)
        assert applied == [record]

    def test_chained_cross_origin_buffering(self):
        a, b, c = make("A"), make("B"), make("C")
        ra = local_commit(a, "set", lambda s: s.prepare_add("x"))
        b.apply_remote(ra)
        rb = local_commit(b, "set", lambda s: s.prepare_add("y"))
        receiver = CausalReceiver(c)
        receiver.receive(rb)
        assert receiver.pending_count == 1
        receiver.receive(ra)  # unlocks both
        assert receiver.pending_count == 0
        assert c.get_object("set").value() == {"x", "y"}
