"""Spec-file parser and CLI tests."""

import pytest

from repro.errors import ParseError
from repro.specfile import parse_specfile
from repro.__main__ import main

MINI = """
# a comment
application mini

sort Player
sort Tournament

predicate player(Player)
predicate tournament(Tournament)
predicate enrolled(Player, Tournament)
numeric   budget(Tournament)

param Capacity = 3

invariant forall(Player: p, Tournament: t) :-
    enrolled(p, t) => player(p) and tournament(t)
invariant [unique-id] true

rule enrolled = rem-wins

operation add_player(Player: p)
    true player(p)
operation rem_tourn(Tournament: t)
    false tournament(t)
    false enrolled(*, t)
operation enroll(Player: p, Tournament: t)
    true enrolled(p, t)
operation fund(Tournament: t)
    incr budget(t) 10
"""


class TestSpecfileParser:
    def test_parses_everything(self):
        spec = parse_specfile(MINI)
        assert spec.name == "mini"
        assert set(spec.schema.sorts) == {"Player", "Tournament"}
        assert spec.schema.params == {"Capacity": 3}
        assert len(spec.invariants) == 2
        assert set(spec.operations) == {
            "add_player", "rem_tourn", "enroll", "fund",
        }

    def test_multiline_invariant_joined(self):
        spec = parse_specfile(MINI)
        assert "player(p)" in spec.invariants[0].describe()

    def test_category_annotation(self):
        spec = parse_specfile(MINI)
        assert spec.invariants[1].category == "unique-id"

    def test_rule_applied(self):
        from repro.spec.effects import ConvergencePolicy

        spec = parse_specfile(MINI)
        assert spec.rules.policy("enrolled") is ConvergencePolicy.REM_WINS

    def test_wildcard_effect(self):
        spec = parse_specfile(MINI)
        rem = spec.operation("rem_tourn")
        assert any(
            getattr(e, "has_wildcard", False) for e in rem.effects
        )

    def test_numeric_effect_amount(self):
        spec = parse_specfile(MINI)
        (effect,) = spec.operation("fund").effects
        assert effect.delta == 10

    def test_numeric_predicate_declared(self):
        spec = parse_specfile(MINI)
        assert spec.schema.pred("budget").numeric

    def test_missing_header(self):
        with pytest.raises(ParseError, match="application"):
            parse_specfile("sort Player")

    def test_unknown_keyword(self):
        with pytest.raises(ParseError, match="unknown keyword"):
            parse_specfile("application x\nbogus line")

    def test_effect_outside_operation(self):
        with pytest.raises(ParseError, match="outside an operation"):
            parse_specfile(
                "application x\npredicate p(S)\ntrue p(s)"
            )

    def test_bad_param_value(self):
        with pytest.raises(ParseError, match="bad parameter"):
            parse_specfile("application x\nparam K = many")

    def test_duplicate_header(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_specfile("application x\napplication y")

    def test_empty_file(self):
        with pytest.raises(ParseError, match="empty"):
            parse_specfile("# nothing\n")


class TestCli:
    @pytest.fixture
    def specfile(self, tmp_path):
        path = tmp_path / "mini.ipa"
        path.write_text(MINI)
        return str(path)

    def test_classify(self, specfile, capsys):
        assert main(["classify", specfile]) == 0
        out = capsys.readouterr().out
        assert "Ref. integrity" in out
        assert "Unique id." in out

    def test_conflicts_on_repaired_spec_clean(self, specfile, capsys):
        """MINI already ships the Figure 2c repair (wildcard clear +
        rem-wins rule), so no conflicts remain."""
        code = main(["conflicts", specfile])
        out = capsys.readouterr().out
        assert code == 0
        assert "I-Confluent" in out

    def test_conflicts_reports_pair(self, tmp_path, capsys):
        unrepaired = MINI.replace("    false enrolled(*, t)\n", "")
        unrepaired = unrepaired.replace("rule enrolled = rem-wins\n", "")
        path = tmp_path / "unrepaired.ipa"
        path.write_text(unrepaired)
        code = main(["conflicts", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "rem_tourn" in out and "enroll" in out

    def test_analyze_produces_patch(self, specfile, capsys):
        code = main(["analyze", specfile])
        out = capsys.readouterr().out
        assert code == 0
        assert "patch:" in out

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent.ipa"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.ipa"
        path.write_text("application x\nbogus")
        assert main(["analyze", str(path)]) == 2

    def test_paper_specfile_parses(self, capsys):
        assert main(["classify", "examples/tournament.ipa"]) == 0

    def test_simulate_prints_throughput(self, capsys):
        code = main(
            [
                "simulate",
                "--clients", "4",
                "--batch-ms", "25",
                "--duration-ms", "1000",
                "--warmup-ms", "200",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Causal: 3 regions x 4 clients, batch_ms=25" in out
        assert "throughput" in out
        assert "replication messages" in out

    def test_simulate_unknown_config(self, capsys):
        assert main(["simulate", "--config", "Eventual"]) == 2
        assert "unknown config" in capsys.readouterr().err
