"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.crdts.base import Dot, EventContext
from repro.crdts.clock import VersionVector
from repro.logic.ast import PredicateDecl, Sort
from repro.logic.parser import SymbolTable
from repro.spec import SpecBuilder


@pytest.fixture
def tournament_symbols() -> SymbolTable:
    """Sorts + predicates of the paper's running example."""
    player = Sort("Player")
    tournament = Sort("Tournament")
    predicates = {
        "player": PredicateDecl("player", (player,)),
        "tournament": PredicateDecl("tournament", (tournament,)),
        "enrolled": PredicateDecl("enrolled", (player, tournament)),
        "active": PredicateDecl("active", (tournament,)),
        "finished": PredicateDecl("finished", (tournament,)),
        "inMatch": PredicateDecl("inMatch", (player, player, tournament)),
        "budget": PredicateDecl("budget", (tournament,), numeric=True),
    }
    return SymbolTable(
        predicates=predicates,
        sorts={"Player": player, "Tournament": tournament},
    )


def make_mini_tournament_spec():
    """The three-operation core of the running example (fast to analyse)."""
    b = SpecBuilder("mini-tournament")
    b.predicate("player", "Player")
    b.predicate("tournament", "Tournament")
    b.predicate("enrolled", "Player", "Tournament")
    b.invariant(
        "forall(Player: p, Tournament: t) :- "
        "enrolled(p, t) => player(p) and tournament(t)"
    )
    b.operation("add_player", "Player: p", true=["player(p)"])
    b.operation("add_tourn", "Tournament: t", true=["tournament(t)"])
    b.operation("rem_tourn", "Tournament: t", false=["tournament(t)"])
    b.operation(
        "enroll", "Player: p, Tournament: t", true=["enrolled(p, t)"]
    )
    return b.build()


@pytest.fixture
def mini_tournament_spec():
    return make_mini_tournament_spec()


def ctx(replica: str, counter: int, seen: dict[str, int] | None = None):
    """Build an event context: ``seen`` is the causal past, the dot is
    appended automatically."""
    vv = VersionVector.of(seen or {})
    vv.entries[replica] = counter
    return EventContext(Dot(replica, counter), vv)
