"""Top-level public API tests."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow_via_top_level_names(self):
        builder = repro.SpecBuilder("api-check")
        builder.predicate("tournament", "Tournament")
        builder.predicate("enrolled", "Player", "Tournament")
        builder.invariant(
            "forall(Player: p, Tournament: t) :- "
            "enrolled(p, t) => tournament(t)"
        )
        builder.operation(
            "enroll", "Player: p, Tournament: t", true=["enrolled(p, t)"]
        )
        builder.operation(
            "rem_tourn", "Tournament: t", false=["tournament(t)"]
        )
        result = repro.run_ipa(builder.build())
        assert result.is_invariant_preserving
        assert isinstance(result.modified, repro.ApplicationSpec)

    def test_specfile_roundtrip_via_top_level(self):
        spec = repro.parse_specfile(
            "application x\n"
            "predicate p(S)\n"
            "operation add(S: s)\n"
            "    true p(s)\n"
        )
        assert spec.name == "x"

    def test_everything_raises_repro_error(self):
        import pytest

        with pytest.raises(repro.ReproError):
            repro.parse_specfile("nonsense")
