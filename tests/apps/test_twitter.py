"""Twitter clone tests."""

import pytest

from repro.apps.common import Variant
from repro.apps.twitter import TwitterApp, twitter_registry, twitter_spec
from repro.crdts import AWSet, RWSet
from repro.sim.events import Simulator
from repro.sim.latency import EU_WEST, REGIONS, US_EAST, US_WEST
from repro.store.cluster import Cluster


def make_app(variant=Variant.ADD_WINS):
    sim = Simulator()
    cluster = Cluster(sim, twitter_registry(variant))
    app = TwitterApp(cluster, variant)
    app.setup(["alice", "bob", "carol"], US_EAST)
    return sim, cluster, app


def settle(sim):
    sim.run(until=sim.now + 2_000.0)


class TestSpec:
    def test_operations(self):
        spec = twitter_spec()
        assert {"tweet", "retweet", "del_tweet", "follow", "rem_user"} <= set(
            spec.operations
        )

    def test_referential_integrity_invariants(self):
        spec = twitter_spec()
        texts = [inv.describe() for inv in spec.invariants]
        assert any("authored" in t for t in texts)
        assert any("inTimeline" in t for t in texts)


class TestRegistry:
    def test_rem_wins_variant_uses_rwsets(self):
        registry = twitter_registry(Variant.REM_WINS)
        assert isinstance(registry.create("users"), RWSet)
        assert isinstance(registry.create("timeline:alice"), RWSet)

    def test_other_variants_use_awsets(self):
        for variant in (Variant.CAUSAL, Variant.ADD_WINS):
            registry = twitter_registry(variant)
            assert isinstance(registry.create("users"), AWSet)


class TestTweeting:
    def test_tweet_fans_out_to_followers(self):
        sim, cluster, app = make_app()
        app.follow(US_EAST, "bob", "alice", lambda _op: None)
        settle(sim)
        app.tweet(US_EAST, "alice", "w1", lambda _op: None)
        settle(sim)
        replica = cluster.replica(US_EAST)
        assert ("w1", "alice") in replica.get_object(
            "timeline:bob"
        ).value()
        assert ("w1", "alice") in replica.get_object(
            "timeline:alice"
        ).value()
        assert "w1" in replica.get_object("tweets").value()

    def test_del_tweet_removes_globally(self):
        sim, cluster, app = make_app()
        app.tweet(US_EAST, "alice", "w1", lambda _op: None)
        settle(sim)
        app.del_tweet(US_EAST, "alice", "w1", lambda _op: None)
        settle(sim)
        assert "w1" not in cluster.replica(EU_WEST).get_object(
            "tweets"
        ).value()


class TestAddWinsStrategy:
    def test_tweet_restores_user_against_concurrent_removal(self):
        sim, cluster, app = make_app(Variant.ADD_WINS)
        app.tweet(US_WEST, "alice", "w1", lambda _op: None)
        app.rem_user(EU_WEST, "alice", lambda _op: None)
        settle(sim)
        assert cluster.converged()
        for region in REGIONS:
            users = cluster.replica(region).get_object("users").value()
            assert "alice" in users
        for region in REGIONS:
            assert app.count_violations(region) == 0

    def test_causal_variant_leaves_dangling_author(self):
        sim, cluster, app = make_app(Variant.CAUSAL)
        app.tweet(US_WEST, "alice", "w1", lambda _op: None)
        app.rem_user(EU_WEST, "alice", lambda _op: None)
        settle(sim)
        assert any(app.count_violations(r) > 0 for r in REGIONS)


class TestRemWinsStrategy:
    def test_rem_user_purges_concurrent_tweet(self):
        sim, cluster, app = make_app(Variant.REM_WINS)
        app.follow(US_EAST, "bob", "alice", lambda _op: None)
        settle(sim)
        app.tweet(US_WEST, "alice", "w1", lambda _op: None)
        app.rem_user(EU_WEST, "alice", lambda _op: None)
        settle(sim)
        assert cluster.converged()
        for region in REGIONS:
            replica = cluster.replica(region)
            assert "alice" not in replica.get_object("users").value()
            timeline = replica.get_object("timeline:bob").value()
            assert all(author != "alice" for _w, author in timeline)

    def test_timeline_read_hides_removed_tweets(self):
        sim, cluster, app = make_app(Variant.REM_WINS)
        app.follow(US_EAST, "bob", "alice", lambda _op: None)
        settle(sim)
        app.tweet(US_EAST, "alice", "w1", lambda _op: None)
        settle(sim)
        # Remove the tweet; bob's timeline entry dangles until read.
        app.del_tweet(US_EAST, "alice", "w1", lambda _op: None)
        settle(sim)
        app.timeline(US_EAST, "bob", lambda _op: None)
        settle(sim)
        replica = cluster.replica(US_EAST)
        assert replica.get_object("timeline:bob").value() == set()

    def test_retweet_of_removed_tweet_hidden_by_compensation(self):
        sim, cluster, app = make_app(Variant.REM_WINS)
        app.follow(US_EAST, "bob", "carol", lambda _op: None)
        app.tweet(US_EAST, "alice", "w1", lambda _op: None)
        settle(sim)
        # Concurrent: delete w1 vs retweet w1 into bob's timeline.
        app.del_tweet(US_WEST, "alice", "w1", lambda _op: None)
        app.retweet(EU_WEST, "carol", "w1", "alice", lambda _op: None)
        settle(sim)
        # Reading bob's timeline compensates the dangling entry away.
        app.timeline(US_EAST, "bob", lambda _op: None)
        settle(sim)
        timeline = cluster.replica(US_EAST).get_object(
            "timeline:bob"
        ).value()
        tweets = cluster.replica(US_EAST).get_object("tweets").value()
        assert all(w in tweets for w, _a in timeline)
