"""Ticket and TPC-W application tests."""

import pytest

from repro.apps.common import Variant
from repro.apps.ticket import (
    TicketApp,
    ticket_registry,
    ticket_spec,
)
from repro.apps.tpcw import TpcwApp, tpcw_registry, tpcw_spec
from repro.crdts import AWSet, CompensatedCounter, CompensationSet, PNCounter
from repro.sim.events import Simulator
from repro.sim.latency import EU_WEST, REGIONS, US_EAST, US_WEST
from repro.store.cluster import Cluster


def settle(sim):
    sim.run(until=sim.now + 2_000.0)


# ---------------------------------------------------------------------------
# Ticket
# ---------------------------------------------------------------------------


def make_ticket(variant=Variant.IPA, capacity=2):
    sim = Simulator()
    cluster = Cluster(sim, ticket_registry(variant, capacity=capacity))
    app = TicketApp(cluster, variant, capacity=capacity)
    app.setup(["e1"], US_EAST)
    return sim, cluster, app


class TestTicketSpec:
    def test_invariants(self):
        spec = ticket_spec(capacity=10)
        texts = [inv.describe() for inv in spec.invariants]
        assert any("EventCapacity" in t for t in texts)
        assert spec.schema.params["EventCapacity"] == 10

    def test_registry_variants(self):
        assert isinstance(
            ticket_registry(Variant.IPA).create("sold:e1"),
            CompensationSet,
        )
        assert isinstance(
            ticket_registry(Variant.CAUSAL).create("sold:e1"), AWSet
        )


class TestTicketApp:
    def test_buy_within_capacity(self):
        sim, cluster, app = make_ticket()
        ops = []
        app.buy_ticket(US_EAST, "k1", "e1", ops.append)
        settle(sim)
        assert ops == ["buy_ticket"]
        assert app.count_violations(US_EAST) == 0

    def test_locally_sold_out_rejected(self):
        sim, cluster, app = make_ticket(capacity=1)
        ops = []
        app.buy_ticket(US_EAST, "k1", "e1", ops.append)
        settle(sim)
        app.buy_ticket(US_EAST, "k2", "e1", ops.append)
        settle(sim)
        assert ops == ["buy_ticket", "buy_rejected"]

    def test_concurrent_oversell_compensated(self):
        sim, cluster, app = make_ticket(capacity=1)
        app.buy_ticket(US_EAST, "k1", "e1", lambda _op: None)
        app.buy_ticket(EU_WEST, "k2", "e1", lambda _op: None)
        settle(sim)
        # Raw state oversold; observed state never is.
        assert app.count_raw_oversells(US_EAST) == 1
        assert app.count_violations(US_EAST) == 0
        app.view_event(US_WEST, "e1", lambda _op: None)
        settle(sim)
        assert all(app.count_raw_oversells(r) == 0 for r in REGIONS)
        assert app.reimbursements(US_EAST) == 1

    def test_create_event(self):
        sim, cluster, app = make_ticket()
        app.create_event(US_EAST, "e2", lambda _op: None)
        settle(sim)
        assert "e2" in cluster.replica(EU_WEST).get_object(
            "events"
        ).value()


# ---------------------------------------------------------------------------
# TPC-W
# ---------------------------------------------------------------------------


def make_tpcw(variant=Variant.IPA):
    sim = Simulator()
    cluster = Cluster(sim, tpcw_registry(variant))
    app = TpcwApp(cluster, variant)
    app.setup(["i1", "i2"], US_EAST)
    return sim, cluster, app


class TestTpcwSpec:
    def test_numeric_invariant(self):
        spec = tpcw_spec()
        texts = [inv.describe() for inv in spec.invariants]
        assert any("stock" in t for t in texts)

    def test_sequential_id_declared(self):
        spec = tpcw_spec()
        assert any(
            inv.category == "sequential-id" for inv in spec.invariants
        )

    def test_registry_variants(self):
        assert isinstance(
            tpcw_registry(Variant.IPA).create("stock:i1"),
            CompensatedCounter,
        )
        assert isinstance(
            tpcw_registry(Variant.CAUSAL).create("stock:i1"), PNCounter
        )


class TestTpcwApp:
    def test_order_decrements_stock(self):
        sim, cluster, app = make_tpcw()
        app.new_order(US_EAST, "o1", "i1", lambda _op: None)
        settle(sim)
        replica = cluster.replica(US_EAST)
        assert replica.get_object("stock:i1").value() == 19
        assert ("o1", "i1") in replica.get_object("orderOf").value()

    def test_restock(self):
        sim, cluster, app = make_tpcw()
        app.restock(US_EAST, "i1", 5, lambda _op: None)
        settle(sim)
        assert cluster.replica(US_EAST).get_object(
            "stock:i1"
        ).value() == 25

    def test_order_of_empty_stock_rejected(self):
        sim, cluster, app = make_tpcw()
        for index in range(20):
            app.new_order(US_EAST, f"o{index}", "i1", lambda _op: None)
        settle(sim)
        ops = []
        app.new_order(US_EAST, "o-extra", "i1", ops.append)
        settle(sim)
        assert ops == ["order_rejected"]

    def test_concurrent_oversell_replenished_on_read(self):
        sim, cluster, app = make_tpcw()
        # Drain stock to 1 then race two orders.
        for index in range(19):
            app.new_order(US_EAST, f"o{index}", "i1", lambda _op: None)
        settle(sim)
        app.new_order(US_WEST, "oa", "i1", lambda _op: None)
        app.new_order(EU_WEST, "ob", "i1", lambda _op: None)
        settle(sim)
        app.browse(US_EAST, "i1", lambda _op: None)
        settle(sim)
        for region in REGIONS:
            assert app.count_violations(region) == 0
            assert cluster.replica(region).get_object(
                "stock:i1"
            ).value() >= 0

    def test_rem_product_clears_orders_ipa(self):
        sim, cluster, app = make_tpcw()
        app.new_order(US_EAST, "o1", "i1", lambda _op: None)
        settle(sim)
        app.rem_product(US_EAST, "i1", lambda _op: None)
        settle(sim)
        for region in REGIONS:
            order_refs = cluster.replica(region).get_object(
                "orderOf"
            ).value()
            assert all(product != "i1" for _o, product in order_refs)

    def test_concurrent_order_vs_rem_product(self):
        sim, cluster, app = make_tpcw()
        app.new_order(US_WEST, "o1", "i1", lambda _op: None)
        app.rem_product(EU_WEST, "i1", lambda _op: None)
        settle(sim)
        assert cluster.converged()
        for region in REGIONS:
            assert app.count_violations(region) == 0

    def test_causal_variant_violates_on_race(self):
        sim, cluster, app = make_tpcw(Variant.CAUSAL)
        app.new_order(US_WEST, "o1", "i1", lambda _op: None)
        app.rem_product(EU_WEST, "i1", lambda _op: None)
        settle(sim)
        assert any(app.count_violations(r) > 0 for r in REGIONS)
