"""Tournament application tests."""

import pytest

from repro.analysis import ConflictChecker
from repro.apps.common import Variant
from repro.apps.tournament import (
    TournamentApp,
    tournament_registry,
    tournament_spec,
)
from repro.crdts import AWSet, CompensationSet, RWSet
from repro.sim.events import Simulator
from repro.sim.latency import REGIONS, US_EAST, US_WEST
from repro.store.cluster import Cluster


def make_app(variant=Variant.IPA, capacity=3):
    sim = Simulator()
    cluster = Cluster(sim, tournament_registry(variant, capacity=capacity))
    app = TournamentApp(cluster, variant, capacity=capacity)
    app.setup([f"p{i}" for i in range(6)], ["t1", "t2"], US_EAST)
    return sim, cluster, app


class TestSpec:
    def test_figure1_invariants_count(self):
        spec = tournament_spec()
        # Six Figure 1 invariants plus the two category-tagged ones.
        assert len(spec.invariants) == 8

    def test_all_figure1_operations_present(self):
        spec = tournament_spec()
        assert set(spec.operations) == {
            "add_player", "add_tourn", "rem_tourn", "enroll",
            "disenroll", "begin_tourn", "finish_tourn", "do_match",
        }

    def test_capacity_parameter(self):
        spec = tournament_spec(capacity=3)
        assert spec.schema.params["Capacity"] == 3

    def test_spec_has_figure2_conflict(self):
        spec = tournament_spec()
        checker = ConflictChecker(spec)
        assert checker.is_conflicting(
            spec.operation("rem_tourn"), spec.operation("enroll")
        ) is not None


class TestRegistry:
    def test_ipa_variant_uses_rem_wins_for_cleared_predicates(self):
        registry = tournament_registry(Variant.IPA)
        assert isinstance(registry.create("enrolled"), RWSet)
        assert isinstance(registry.create("inMatch"), RWSet)
        assert isinstance(registry.create("tournaments"), AWSet)
        assert isinstance(registry.create("capacity:t1"), CompensationSet)

    def test_causal_variant_all_add_wins(self):
        registry = tournament_registry(Variant.CAUSAL)
        assert isinstance(registry.create("enrolled"), AWSet)
        assert isinstance(registry.create("capacity:t1"), AWSet)


class TestOperations:
    def test_enroll_and_status(self):
        sim, cluster, app = make_app()
        ops = []
        app.enroll(US_EAST, "p0", "t1", ops.append)
        app.status(US_EAST, "t1", ops.append)
        sim.run(until=sim.now + 2_000.0)
        assert ops == ["enroll", "status"]
        assert ("p0", "t1") in cluster.replica(
            US_EAST
        ).get_object("enrolled").value()

    def test_disenroll(self):
        sim, cluster, app = make_app()
        app.enroll(US_EAST, "p0", "t1", lambda _op: None)
        sim.run(until=sim.now + 1_000.0)
        app.disenroll(US_EAST, "p0", "t1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        assert cluster.replica(US_EAST).get_object(
            "enrolled"
        ).value() == set()

    def test_begin_finish_lifecycle(self):
        sim, cluster, app = make_app()
        app.begin_tourn(US_EAST, "t1", lambda _op: None)
        sim.run(until=sim.now + 1_000.0)
        replica = cluster.replica(US_EAST)
        assert "t1" in replica.get_object("active").value()
        app.finish_tourn(US_EAST, "t1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        assert "t1" not in replica.get_object("active").value()
        assert "t1" in replica.get_object("finished").value()

    def test_capacity_compensation_trims(self):
        sim, cluster, app = make_app(capacity=2)
        # Oversell concurrently from different regions.
        for index, region in enumerate(REGIONS):
            app.enroll(region, f"p{index}", "t1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        app.status(US_EAST, "t1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        for region in REGIONS:
            assert app.count_violations(region) == 0

    def test_violation_audit_counts(self):
        sim, cluster, app = make_app(Variant.CAUSAL)
        app.enroll(US_WEST, "p0", "t1", lambda _op: None)
        app.rem_tourn(US_EAST, "t1", lambda _op: None)
        sim.run(until=sim.now + 2_000.0)
        assert app.count_violations(US_EAST) >= 1
