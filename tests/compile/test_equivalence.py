"""Differential proof that compiled invariants match the interpreter.

The compilation layer (repro.compile) is only admissible if it is
observationally invisible: every verdict, every witness binding, every
violation ordering, every trial fingerprint must be identical with and
without it.  This suite drives both implementations with

- hypothesis-generated random formulas (nested quantifiers including
  shadowed re-binding, cardinalities with wildcards, numeric sums,
  every connective) over random interpretations;
- hand-picked regression shapes the generator is unlikely to weight
  (colliding variable names across sorts, empty domains, witness
  truncation);
- full ``run_trial`` runs per app/config, asserting byte-identical
  fingerprints between the compiled default and ``--no-compile``;
- the on-disk artifact cache, asserting a disk hit reproduces the
  freshly-generated behaviour.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import build_trial, run_trial
from repro.check.oracles import Interpretation, InvariantOracle, eval_formula
from repro.compile import (
    SpecCache,
    compile_spec,
    default_cache,
    set_compilation,
    spec_cache_key,
)
from repro.logic.ast import (
    Add,
    And,
    Card,
    Cmp,
    Const,
    Exists,
    ForAll,
    Iff,
    Implies,
    IntConst,
    Not,
    NumPred,
    Or,
    Param,
    Sort,
    Var,
    Wildcard,
)
from repro.obs import REGISTRY
from repro.spec.application import ApplicationSpec
from repro.spec.invariants import Invariant
from repro.spec.predicates import Schema

A = Sort("A")
B = Sort("B")
VA = Var("a", A)
VB = Var("b", B)
#: Same *name* as VA but a different sort: exercises the runtime-sorted
#: witness path (colliding names cannot be ordered at compile time).
VA2 = Var("a", B)

def build_fuzz_schema() -> Schema:
    schema = Schema("fuzz")
    schema.sort("A")
    schema.sort("B")
    schema.predicate("p", "A")
    schema.predicate("q", "A", "B")
    schema.predicate("r", "B")
    schema.predicate("n", "A", numeric=True)
    schema.predicate("m", "A", "B", numeric=True)
    schema.parameter("P", 3)
    return schema


SCHEMA = build_fuzz_schema()
P_PRED = SCHEMA.predicates["p"]
Q_PRED = SCHEMA.predicates["q"]
R_PRED = SCHEMA.predicates["r"]
N_PRED = SCHEMA.predicates["n"]
M_PRED = SCHEMA.predicates["m"]

A_NAMES = ("x0", "x1", "x2", "x3")
B_NAMES = ("y0", "y1", "y2")


def spec_of(formula, name: str = "") -> ApplicationSpec:
    return ApplicationSpec(
        schema=SCHEMA, invariants=[Invariant(formula, name=name)]
    )


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def leaves():
    num_atoms = [
        NumPred(N_PRED, (VA,)),
        NumPred(M_PRED, (VA, VB)),
        NumPred(N_PRED, (Const("x1", A),)),
        Card(Q_PRED, (VA, Wildcard(B))),
        Card(Q_PRED, (Wildcard(A), VB)),
        Card(P_PRED, (Wildcard(A),)),
        Card(Q_PRED, (Const("x0", A), VB)),
        Param("P"),
        IntConst(2),
    ]
    nums = st.one_of(
        st.sampled_from(num_atoms),
        st.builds(
            lambda t, u: Add((t, u)),
            st.sampled_from(num_atoms),
            st.sampled_from(num_atoms),
        ),
    )
    cmps = st.builds(
        Cmp,
        st.sampled_from(("<=", "<", ">=", ">", "==", "!=")),
        nums,
        nums,
    )
    atoms = st.sampled_from(
        [
            P_PRED(VA),
            Q_PRED(VA, VB),
            R_PRED(VB),
            P_PRED(Const("x2", A)),
            Q_PRED(VA, Const("y0", B)),
        ]
    )
    return st.one_of(atoms, cmps)


def bodies():
    def extend(children):
        return st.one_of(
            st.builds(Not, children),
            st.builds(lambda x, y: And((x, y)), children, children),
            st.builds(lambda x, y: Or((x, y)), children, children),
            st.builds(Implies, children, children),
            st.builds(Iff, children, children),
            # Re-binding VA / VB inside the body shadows the outer
            # binder -- the interpreter and the generated locals must
            # agree on inner-wins semantics.
            st.builds(lambda x: ForAll((VA,), x), children),
            st.builds(lambda x: Exists((VB,), x), children),
            st.builds(lambda x: Exists((VA, VB), x), children),
        )

    return st.recursive(leaves(), extend, max_leaves=10)


def invariants():
    return st.one_of(
        st.builds(lambda x: ForAll((VA, VB), x), bodies()),
        st.builds(lambda x: ForAll((VB, VA), x), bodies()),
        st.builds(lambda x: Exists((VA, VB), x), bodies()),
        st.builds(lambda x: Not(Exists((VA, VB), x)), bodies()),
    )


def interpretations():
    def build(p_rows, q_rows, r_rows, n_cells, m_cells, param):
        return Interpretation(
            relations={
                "p": {(x,) for x in p_rows},
                "q": set(q_rows),
                "r": {(y,) for y in r_rows},
            },
            numerics={
                "n": {(x,): v for x, v in n_cells.items()},
                "m": dict(m_cells),
            },
            params={"P": param},
        )

    pairs = st.tuples(
        st.sampled_from(A_NAMES), st.sampled_from(B_NAMES)
    )
    return st.builds(
        build,
        st.sets(st.sampled_from(A_NAMES)),
        st.sets(pairs),
        st.sets(st.sampled_from(B_NAMES)),
        st.dictionaries(
            st.sampled_from(A_NAMES), st.integers(-3, 6), max_size=4
        ),
        st.dictionaries(pairs, st.integers(-3, 6), max_size=6),
        st.integers(0, 5),
    )


def check_both(spec, interp, max_witnesses=5):
    """(compiled, interpreted) violation lists over isolated copies."""
    compiled_interp = copy.deepcopy(interp)
    interpreted_interp = copy.deepcopy(interp)
    compiled = InvariantOracle(
        spec, max_witnesses=max_witnesses, compiled=True
    ).check(compiled_interp, "r0")
    interpreted = InvariantOracle(
        spec, max_witnesses=max_witnesses, compiled=False
    ).check(interpreted_interp, "r0")
    return compiled, interpreted


# ---------------------------------------------------------------------------
# Hypothesis differential suite
# ---------------------------------------------------------------------------


class TestRandomFormulas:
    @given(invariants(), interpretations(), st.integers(1, 6))
    @settings(max_examples=150, deadline=None)
    def test_verdicts_and_witnesses_agree(self, formula, interp, max_w):
        spec = spec_of(formula)
        compiled, interpreted = check_both(spec, interp, max_witnesses=max_w)
        assert compiled == interpreted

    @given(invariants(), interpretations())
    @settings(max_examples=100, deadline=None)
    def test_eval_formula_agrees_with_compiled_verdict(
        self, formula, interp
    ) -> None:
        spec = spec_of(formula)
        interp.params = dict(interp.params) or {"P": 3}
        holds = eval_formula(formula, interp, interp.domain(spec))
        compiled, _ = check_both(spec, interp)
        assert holds == (not compiled)

    @given(invariants(), interpretations())
    @settings(max_examples=60, deadline=None)
    def test_compiled_is_deterministic_across_instances(
        self, formula, interp
    ) -> None:
        spec = spec_of(formula)
        first = compile_spec(spec).check(copy.deepcopy(interp), "r0")
        second = compile_spec(spec).check(copy.deepcopy(interp), "r0")
        assert first == second


# ---------------------------------------------------------------------------
# Targeted regression shapes
# ---------------------------------------------------------------------------


class TestRegressionShapes:
    def test_shadowed_rebinding_inner_wins(self) -> None:
        # forall a. exists a. p(a): the inner binder must fully shadow
        # the outer one, so the formula holds whenever *any* A-constant
        # satisfies p, regardless of the outer iterate.
        formula = ForAll((VA,), Exists((VA,), P_PRED(VA)))
        interp = Interpretation(
            relations={
                "p": {("x1",)},
                "q": {("x0", "y0"), ("x1", "y0")},
            },
            params={"P": 3},
        )
        compiled, interpreted = check_both(spec_of(formula), interp)
        assert compiled == interpreted == []

    def test_colliding_witness_names_sort_at_runtime(self) -> None:
        # Both binders are named "a" (different sorts): witness pairs
        # cannot be pre-sorted at compile time.
        formula = ForAll((VA, VA2), Not(Q_PRED(VA, VA2)))
        interp = Interpretation(
            relations={"q": {("x0", "y1"), ("x1", "y0")}}, params={"P": 3}
        )
        compiled, interpreted = check_both(spec_of(formula), interp)
        assert compiled == interpreted
        assert all(len(v.witness) == 2 for v in compiled)

    def test_empty_domain_is_vacuous(self) -> None:
        formula = ForAll((VA,), P_PRED(VA))
        interp = Interpretation(params={"P": 3})
        compiled, interpreted = check_both(spec_of(formula), interp)
        assert compiled == interpreted == []

    def test_witness_truncation_matches(self) -> None:
        formula = ForAll((VA,), P_PRED(VA))
        interp = Interpretation(
            relations={
                "p": set(),
                "q": {(x, "y0") for x in A_NAMES},
            },
            params={"P": 3},
        )
        for max_w in (1, 2, 3, 10):
            compiled, interpreted = check_both(
                spec_of(formula), interp, max_witnesses=max_w
            )
            assert compiled == interpreted
            assert len(compiled) == min(max_w, len(A_NAMES))

    def test_card_memo_agrees_with_fresh_count(self) -> None:
        interp = Interpretation(
            relations={"q": {("x0", "y0"), ("x0", "y1"), ("x1", "y0")}},
            params={"P": 2},
        )
        formula = ForAll((VA,), Cmp("<=", Card(Q_PRED, (VA, Wildcard(B))), Param("P")))
        compiled, interpreted = check_both(spec_of(formula), interp)
        assert compiled == interpreted == []
        group = interp.card_group("q", (0,))
        assert group == {("x0",): 2, ("x1",): 1}
        assert interp.card_group("q", (0,)) is group  # memoized

    def test_formula_eval_counter_ticks(self) -> None:
        counter = REGISTRY.counter("check.formula.evals")
        before = counter.value
        formula = ForAll((VA,), P_PRED(VA))
        interp = Interpretation(relations={"p": {("x0",)}}, params={"P": 3})
        check_both(spec_of(formula), interp)
        assert counter.value >= before + 2  # both paths tick it


# ---------------------------------------------------------------------------
# Whole-trial digest identity (sim + check stack)
# ---------------------------------------------------------------------------


APPS = ("tournament", "ticket", "tpcw", "twitter")


@pytest.fixture
def compilation_toggle():
    yield set_compilation
    set_compilation(None)


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("config", ["Causal", "IPA"])
def test_trial_fingerprints_identical(app, config, compilation_toggle):
    spec = build_trial(app, config, root_seed=11, index=1)
    compilation_toggle(True)
    compiled = run_trial(spec)
    compilation_toggle(False)
    interpreted = run_trial(spec)
    assert compiled.fingerprint == interpreted.fingerprint
    assert compiled.violations == interpreted.violations
    assert compiled.digests == interpreted.digests


def test_live_deployment_spec_identical(compilation_toggle):
    # The deployment dict is everything `repro serve` replays live --
    # schedules and the digests the live cluster must reproduce byte
    # for byte.  Compilation must not perturb any of it.
    from repro.net.oracle import record_trial

    spec = build_trial("tournament", "Causal", root_seed=11, index=1)
    compilation_toggle(True)
    _, compiled = record_trial(spec)
    compilation_toggle(False)
    _, interpreted = record_trial(spec)
    assert compiled == interpreted


# ---------------------------------------------------------------------------
# Artifact cache round-trip
# ---------------------------------------------------------------------------


class TestArtifactCache:
    def test_disk_round_trip_is_behaviour_identical(self, tmp_path) -> None:
        from repro.apps.tournament import tournament_spec

        spec = tournament_spec(capacity=2)
        interp = Interpretation(
            relations={
                "player": {("p1",), ("p2",), ("p3",)},
                "tournament": {("t1",)},
                "enrolled": {
                    ("p1", "t1"), ("p2", "t1"), ("p3", "t1"),
                },
            },
            params={"Capacity": 2},
        )
        warm = SpecCache(tmp_path)
        fresh_build = warm.get_or_build(spec)
        assert fresh_build is not None
        key = spec_cache_key(spec)
        assert (tmp_path / key[:2] / f"{key}.json").exists()

        hit_counter = REGISTRY.counter("compile.cache.hit")
        before = hit_counter.value
        cold = SpecCache(tmp_path)  # new process, same directory
        from_disk = cold.get_or_build(spec)
        assert from_disk is not None
        assert hit_counter.value == before + 1
        assert [i.source for i in from_disk.invariants] == [
            i.source for i in fresh_build.invariants
        ]
        assert from_disk.check(
            copy.deepcopy(interp), "r0"
        ) == fresh_build.check(copy.deepcopy(interp), "r0")

    def test_corrupt_disk_entry_is_rejected_and_rebuilt(
        self, tmp_path
    ) -> None:
        from repro.apps.tournament import tournament_spec

        spec = tournament_spec(capacity=2)
        SpecCache(tmp_path).get_or_build(spec)
        key = spec_cache_key(spec)
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text(path.read_text()[:40], encoding="utf-8")
        rebuilt = SpecCache(tmp_path).get_or_build(spec)
        assert rebuilt is not None
        assert len(rebuilt.invariants) > 0

    def test_default_cache_shares_artifacts(self) -> None:
        from repro.apps.tournament import tournament_spec

        spec = tournament_spec(capacity=4)
        first = default_cache().get_or_build(spec)
        second = default_cache().get_or_build(spec)
        assert first is second
