"""Transformation tests, including hypothesis properties.

The key property: NNF conversion and simplification preserve the truth
value of a formula under every model, with the reference evaluator
(:func:`repro.solver.models.evaluate`) as the semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SortError
from repro.logic.ast import (
    And,
    Atom,
    Cmp,
    Const,
    Exists,
    FalseF,
    ForAll,
    Iff,
    Implies,
    IntConst,
    Not,
    Or,
    PredicateDecl,
    Sort,
    TrueF,
    Var,
)
from repro.logic.grounding import Domain
from repro.logic.transform import (
    free_vars,
    negate,
    simplify,
    substitute,
    to_nnf,
)
from repro.solver.models import Model, evaluate

S = Sort("S")
a = PredicateDecl("a", (S,))
b = PredicateDecl("b", (S,))
r = PredicateDecl("r", (S, S))
x, y = Var("x", S), Var("y", S)
c0, c1 = Const("c0", S), Const("c1", S)
DOMAIN = Domain({S: (c0, c1)})


class TestSubstitute:
    def test_replaces_free_variable(self):
        formula = a(x) & r(x, y)
        result = substitute(formula, {x: c0})
        assert result == a(c0) & r(c0, y)

    def test_bound_variables_shadow(self):
        formula = ForAll((x,), a(x) & b(y))
        result = substitute(formula, {x: c0, y: c1})
        assert result == ForAll((x,), a(x) & b(c1))

    def test_sort_mismatch_rejected(self):
        other = Sort("Other")
        with pytest.raises(SortError):
            substitute(a(x), {x: Const("z", other)})

    def test_numeric_terms(self):
        stock = PredicateDecl("stock", (S,), numeric=True)
        formula = Cmp(">=", stock(x), IntConst(0))
        result = substitute(formula, {x: c0})
        assert result.lhs.args == (c0,)


class TestFreeVars:
    def test_atom(self):
        assert free_vars(r(x, y)) == {x, y}

    def test_quantifier_binds(self):
        assert free_vars(ForAll((x,), r(x, y))) == {y}

    def test_closed_formula(self):
        assert free_vars(ForAll((x, y), r(x, y))) == set()

    def test_constants_not_free(self):
        assert free_vars(a(c0)) == set()


class TestNegate:
    def test_double_negation(self):
        assert negate(Not(a(x))) == a(x)

    def test_cmp_flips_operator(self):
        stock = PredicateDecl("stock2", (S,), numeric=True)
        cmp = Cmp("<=", stock(x), IntConst(5))
        assert negate(cmp).op == ">"

    def test_constants(self):
        assert isinstance(negate(TrueF()), FalseF)
        assert isinstance(negate(FalseF()), TrueF)


# -- hypothesis: random ground formulas --------------------------------------


def ground_atoms():
    return st.sampled_from(
        [a(c0), a(c1), b(c0), b(c1), r(c0, c1), r(c1, c0)]
    )


def formulas(max_depth=4):
    base = st.one_of(
        ground_atoms(),
        st.just(TrueF()),
        st.just(FalseF()),
    )

    def extend(children):
        return st.one_of(
            st.builds(Not, children),
            st.builds(lambda l, r_: And((l, r_)), children, children),
            st.builds(lambda l, r_: Or((l, r_)), children, children),
            st.builds(Implies, children, children),
            st.builds(Iff, children, children),
        )

    return st.recursive(base, extend, max_leaves=12)


def models():
    atoms = [a(c0), a(c1), b(c0), b(c1), r(c0, c1), r(c1, c0)]
    return st.builds(
        lambda values: Model(
            domain=DOMAIN, atoms=dict(zip(atoms, values))
        ),
        st.lists(st.booleans(), min_size=len(atoms), max_size=len(atoms)),
    )


class TestSemanticPreservation:
    @given(formulas(), models())
    @settings(max_examples=200, deadline=None)
    def test_nnf_preserves_truth(self, formula, model):
        assert evaluate(to_nnf(formula), model) == evaluate(formula, model)

    @given(formulas(), models())
    @settings(max_examples=200, deadline=None)
    def test_simplify_preserves_truth(self, formula, model):
        assert evaluate(simplify(formula), model) == evaluate(formula, model)

    @given(formulas(), models())
    @settings(max_examples=200, deadline=None)
    def test_negate_inverts_truth(self, formula, model):
        assert evaluate(negate(formula), model) != evaluate(formula, model)

    @given(formulas())
    @settings(max_examples=100, deadline=None)
    def test_nnf_shape(self, formula):
        """NNF has no =>/<=> and negations only over atoms."""
        def check(node):
            assert not isinstance(node, (Implies, Iff))
            if isinstance(node, Not):
                assert isinstance(node.arg, Atom)
                return
            if isinstance(node, (And, Or)):
                for child in node.args:
                    check(child)

        check(to_nnf(formula))


class TestQuantifierNnf:
    def test_negated_forall_becomes_exists(self):
        formula = Not(ForAll((x,), a(x)))
        result = to_nnf(formula)
        assert isinstance(result, Exists)
        assert isinstance(result.body, Not)

    def test_negated_exists_becomes_forall(self):
        formula = Not(Exists((x,), a(x)))
        result = to_nnf(formula)
        assert isinstance(result, ForAll)

    def test_quantified_equivalence_over_domain(self):
        formula = Not(ForAll((x,), a(x)))
        model = Model(domain=DOMAIN, atoms={a(c0): True, a(c1): False})
        assert evaluate(formula, model) is True
        assert evaluate(to_nnf(formula), model) is True


class TestSimplify:
    def test_constant_folding_cmp(self):
        assert isinstance(
            simplify(Cmp("<", IntConst(1), IntConst(2))), TrueF
        )
        assert isinstance(
            simplify(Cmp(">", IntConst(1), IntConst(2))), FalseF
        )

    def test_flattens_nested_and(self):
        formula = And((And((a(c0), b(c0))), a(c1)))
        result = simplify(formula)
        assert isinstance(result, And)
        assert len(result.args) == 3

    def test_implication_with_false_lhs(self):
        assert isinstance(simplify(Implies(FalseF(), a(c0))), TrueF)

    def test_quantifier_with_constant_body(self):
        assert isinstance(simplify(ForAll((x,), TrueF())), TrueF)
