"""Pretty-printer tests."""

from repro.logic.ast import (
    And,
    Implies,
    Not,
    Or,
    PredicateDecl,
    Sort,
    Var,
)
from repro.logic.parser import SymbolTable, parse_formula
from repro.logic.pretty import pretty

P = Sort("Player")
T = Sort("Tournament")
player = PredicateDecl("player", (P,))
active = PredicateDecl("active", (T,))
finished = PredicateDecl("finished", (T,))
enrolled = PredicateDecl("enrolled", (P, T))
p = Var("p", P)
t = Var("t", T)

SYMBOLS = SymbolTable(
    predicates={
        "player": player,
        "active": active,
        "finished": finished,
        "enrolled": enrolled,
    },
    sorts={"Player": P, "Tournament": T},
)


class TestPretty:
    def test_atom(self):
        assert pretty(player(p)) == "player(p)"

    def test_implication_minimal_parens(self):
        formula = Implies(enrolled(p, t), And((player(p), active(t))))
        assert pretty(formula) == "enrolled(p, t) => player(p) and active(t)"

    def test_or_inside_and_parenthesised(self):
        formula = And((player(p), Or((active(t), finished(t)))))
        assert pretty(formula) == "player(p) and (active(t) or finished(t))"

    def test_not_binding(self):
        formula = Not(And((active(t), finished(t))))
        assert pretty(formula) == "not (active(t) and finished(t))"

    def test_quantifier_groups_binders_by_sort(self):
        text = (
            "forall(Player: p, q, Tournament: t) :- "
            "enrolled(p, t) and enrolled(q, t)"
        )
        formula = parse_formula(text, SYMBOLS)
        rendered = pretty(formula)
        assert rendered.startswith("forall(Player: p, q, Tournament: t)")

    def test_roundtrip_through_parser(self):
        """pretty() output re-parses to the same formula."""
        samples = [
            "forall(Player: p, Tournament: t) :- "
            "enrolled(p, t) => player(p) and active(t)",
            "forall(Tournament: t) :- not (active(t) and finished(t))",
            "forall(Tournament: t) :- active(t) or finished(t)",
        ]
        for text in samples:
            formula = parse_formula(text, SYMBOLS)
            reparsed = parse_formula(pretty(formula), SYMBOLS)
            assert reparsed == formula
