"""Property: pretty-printed formulas re-parse to themselves."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.ast import (
    And,
    Atom,
    ForAll,
    Iff,
    Implies,
    Not,
    Or,
    PredicateDecl,
    Sort,
    Var,
)
from repro.logic.parser import SymbolTable, parse_formula
from repro.logic.pretty import pretty

P = Sort("Player")
T = Sort("Tournament")
player = PredicateDecl("player", (P,))
tournament = PredicateDecl("tournament", (T,))
enrolled = PredicateDecl("enrolled", (P, T))
p = Var("p", P)
t = Var("t", T)

SYMBOLS = SymbolTable(
    predicates={
        "player": player,
        "tournament": tournament,
        "enrolled": enrolled,
    },
    sorts={"Player": P, "Tournament": T},
)

ATOMS = [player(p), tournament(t), enrolled(p, t)]


def bodies():
    base = st.sampled_from(ATOMS)

    def extend(children):
        return st.one_of(
            st.builds(Not, children),
            st.builds(lambda a, b: And((a, b)), children, children),
            st.builds(lambda a, b: Or((a, b)), children, children),
            st.builds(Implies, children, children),
            st.builds(Iff, children, children),
        )

    return st.recursive(base, extend, max_leaves=8)


class TestRoundTrip:
    @given(bodies())
    @settings(max_examples=250, deadline=None)
    def test_pretty_then_parse_is_identity(self, body):
        formula = ForAll((p, t), body)
        rendered = pretty(formula)
        reparsed = parse_formula(rendered, SYMBOLS)
        assert _normalise(reparsed) == _normalise(formula), rendered


def _normalise(formula):
    """Collapse binary-tree vs flat n-ary conjunction differences."""
    if isinstance(formula, And):
        parts = []
        for arg in formula.args:
            n = _normalise(arg)
            parts.extend(n.args if isinstance(n, And) else [n])
        return And(tuple(parts))
    if isinstance(formula, Or):
        parts = []
        for arg in formula.args:
            n = _normalise(arg)
            parts.extend(n.args if isinstance(n, Or) else [n])
        return Or(tuple(parts))
    if isinstance(formula, Not):
        return Not(_normalise(formula.arg))
    if isinstance(formula, Implies):
        return Implies(_normalise(formula.lhs), _normalise(formula.rhs))
    if isinstance(formula, Iff):
        return Iff(_normalise(formula.lhs), _normalise(formula.rhs))
    if isinstance(formula, ForAll):
        return ForAll(formula.vars, _normalise(formula.body))
    return formula
