"""Parser tests: the paper's annotation language."""

import pytest

from repro.errors import ParseError, SortError
from repro.logic.ast import (
    And,
    Atom,
    Card,
    Cmp,
    Exists,
    ForAll,
    Implies,
    IntConst,
    Not,
    NumPred,
    Or,
    Param,
    TrueF,
    Var,
    Wildcard,
)
from repro.logic.parser import parse_formula


class TestPaperInvariants:
    """Every invariant of Figure 1 must parse to the right shape."""

    def test_referential_integrity(self, tournament_symbols):
        inv = parse_formula(
            "forall(Player: p, Tournament: t) :- "
            "enrolled(p, t) => player(p) and tournament(t)",
            tournament_symbols,
        )
        assert isinstance(inv, ForAll)
        assert [v.name for v in inv.vars] == ["p", "t"]
        assert [v.sort.name for v in inv.vars] == ["Player", "Tournament"]
        body = inv.body
        assert isinstance(body, Implies)
        assert isinstance(body.lhs, Atom) and body.lhs.pred.name == "enrolled"
        assert isinstance(body.rhs, And)

    def test_shared_sort_binders(self, tournament_symbols):
        inv = parse_formula(
            "forall(Player: p, q, Tournament: t) :- inMatch(p, q, t) => "
            "enrolled(p, t) and enrolled(q, t) and (active(t) or finished(t))",
            tournament_symbols,
        )
        assert isinstance(inv, ForAll)
        sorts = [v.sort.name for v in inv.vars]
        assert sorts == ["Player", "Player", "Tournament"]
        # The disjunction survives inside the conjunction.
        assert isinstance(inv.body.rhs, And)
        assert any(isinstance(a, Or) for a in inv.body.rhs.args)

    def test_cardinality_bound(self, tournament_symbols):
        inv = parse_formula(
            "forall(Tournament: t) :- #enrolled(*, t) <= Capacity",
            tournament_symbols,
        )
        body = inv.body
        assert isinstance(body, Cmp) and body.op == "<="
        assert isinstance(body.lhs, Card)
        assert isinstance(body.lhs.args[0], Wildcard)
        assert body.lhs.args[0].sort.name == "Player"
        assert body.rhs == Param("Capacity")

    def test_mutual_exclusion(self, tournament_symbols):
        inv = parse_formula(
            "forall(Tournament: t) :- not (active(t) and finished(t))",
            tournament_symbols,
        )
        assert isinstance(inv.body, Not)
        assert isinstance(inv.body.arg, And)

    def test_status_implication(self, tournament_symbols):
        inv = parse_formula(
            "forall(Tournament: t) :- active(t) => tournament(t)",
            tournament_symbols,
        )
        assert isinstance(inv.body, Implies)


class TestGrammar:
    def test_true_false_literals(self, tournament_symbols):
        assert isinstance(parse_formula("true", tournament_symbols), TrueF)

    def test_exists(self, tournament_symbols):
        formula = parse_formula(
            "exists(Player: p) :- player(p)", tournament_symbols
        )
        assert isinstance(formula, Exists)

    def test_iff(self, tournament_symbols):
        formula = parse_formula(
            "forall(Tournament: t) :- active(t) <=> not finished(t)",
            tournament_symbols,
        )
        from repro.logic.ast import Iff

        assert isinstance(formula.body, Iff)

    def test_implies_right_associative(self, tournament_symbols):
        formula = parse_formula(
            "forall(Tournament: t) :- active(t) => finished(t) => tournament(t)",
            tournament_symbols,
        )
        body = formula.body
        assert isinstance(body, Implies)
        assert isinstance(body.rhs, Implies)

    def test_numeric_predicate_comparison(self, tournament_symbols):
        formula = parse_formula(
            "forall(Tournament: t) :- budget(t) >= 0", tournament_symbols
        )
        body = formula.body
        assert isinstance(body.lhs, NumPred)
        assert body.rhs == IntConst(0)

    def test_free_variables_from_scope(self, tournament_symbols):
        player_sort = tournament_symbols.sorts["Player"]
        scope = {"p": Var("p", player_sort)}
        symbols = type(tournament_symbols)(
            predicates=tournament_symbols.predicates,
            sorts=tournament_symbols.sorts,
            variables=scope,
        )
        formula = parse_formula("player(p)", symbols)
        assert formula == Atom(
            tournament_symbols.predicates["player"], (Var("p", player_sort),)
        )

    def test_parenthesised_formula(self, tournament_symbols):
        formula = parse_formula(
            "forall(Tournament: t) :- (active(t) or finished(t)) "
            "and tournament(t)",
            tournament_symbols,
        )
        assert isinstance(formula.body, And)


class TestErrors:
    def test_unknown_predicate(self, tournament_symbols):
        with pytest.raises(ParseError, match="unknown predicate"):
            parse_formula(
                "forall(Player: p) :- ghost(p)", tournament_symbols
            )

    def test_unbound_variable(self, tournament_symbols):
        with pytest.raises(ParseError, match="unbound variable"):
            parse_formula(
                "forall(Player: p) :- enrolled(p, t)", tournament_symbols
            )

    def test_wrong_sort_argument(self, tournament_symbols):
        with pytest.raises(SortError):
            parse_formula(
                "forall(Player: p) :- tournament(p)", tournament_symbols
            )

    def test_arity_mismatch(self, tournament_symbols):
        with pytest.raises(ParseError, match="too (many|few) arguments"):
            parse_formula(
                "forall(Player: p) :- enrolled(p)", tournament_symbols
            )

    def test_trailing_input(self, tournament_symbols):
        with pytest.raises(ParseError, match="trailing"):
            parse_formula(
                "forall(Player: p) :- player(p) player(p)",
                tournament_symbols,
            )

    def test_boolean_pred_in_comparison(self, tournament_symbols):
        with pytest.raises(ParseError, match="comparison"):
            parse_formula(
                "forall(Player: p) :- player(p) <= 3", tournament_symbols
            )

    def test_unexpected_character(self, tournament_symbols):
        with pytest.raises(ParseError):
            parse_formula("forall(Player: p) :- player(p) $",
                          tournament_symbols)

    def test_missing_sort_in_binder(self, tournament_symbols):
        with pytest.raises(ParseError, match="no sort"):
            parse_formula("forall(p) :- player(p)", tournament_symbols)
