"""Grounding tests: bounded quantifier expansion."""

import pytest

from repro.errors import GroundingError
from repro.logic.ast import (
    And,
    Atom,
    Card,
    Cmp,
    Const,
    Exists,
    ForAll,
    IntConst,
    Or,
    PredicateDecl,
    Sort,
    Var,
    Wildcard,
)
from repro.logic.grounding import (
    Domain,
    collect_atoms,
    collect_numpreds,
    expand_card,
    expand_wildcard_args,
    ground,
)

P = Sort("Player")
T = Sort("Tournament")
player = PredicateDecl("player", (P,))
enrolled = PredicateDecl("enrolled", (P, T))
stock = PredicateDecl("stock", (T,), numeric=True)
p = Var("p", P)
t = Var("t", T)


@pytest.fixture
def domain():
    return Domain.of_sizes({P: 2, T: 2})


class TestDomain:
    def test_of_sizes_names(self, domain):
        assert [c.name for c in domain.of(P)] == ["player0", "player1"]
        assert domain.size(T) == 2

    def test_unknown_sort(self, domain):
        with pytest.raises(GroundingError):
            domain.of(Sort("Ghost"))

    def test_uniform(self):
        dom = Domain.uniform([P, T], 3)
        assert dom.size(P) == dom.size(T) == 3

    def test_extended_dedupes(self, domain):
        extra = Const("player0", P)
        extended = domain.extended({P: [extra, Const("px", P)]})
        names = [c.name for c in extended.of(P)]
        assert names == ["player0", "player1", "px"]

    def test_assignments_cartesian(self, domain):
        assignments = list(domain.assignments([p, t]))
        assert len(assignments) == 4
        assert all(set(a) == {p, t} for a in assignments)


class TestGround:
    def test_forall_expands_to_conjunction(self, domain):
        formula = ForAll((p,), Atom(player, (p,)))
        result = ground(formula, domain)
        assert isinstance(result, And)
        assert len(result.args) == 2
        assert all(isinstance(x, Atom) for x in result.args)

    def test_exists_expands_to_disjunction(self, domain):
        formula = Exists((p,), Atom(player, (p,)))
        result = ground(formula, domain)
        assert isinstance(result, Or)

    def test_nested_quantifiers(self, domain):
        formula = ForAll((p, t), Atom(enrolled, (p, t)))
        result = ground(formula, domain)
        assert isinstance(result, And)
        assert len(result.args) == 4

    def test_free_variable_rejected(self, domain):
        with pytest.raises(GroundingError, match="free variable"):
            ground(Atom(player, (p,)), domain)

    def test_wildcard_in_atom_rejected(self, domain):
        with pytest.raises(GroundingError, match="wildcard"):
            ground(Atom(player, (Wildcard(P),)), domain)

    def test_cardinality_left_intact(self, domain):
        formula = ForAll(
            (t,), Cmp("<=", Card(enrolled, (Wildcard(P), t)), IntConst(1))
        )
        result = ground(formula, domain)
        assert isinstance(result, And)
        lhs = result.args[0].lhs
        assert isinstance(lhs, Card)
        assert isinstance(lhs.args[0], Wildcard)
        assert isinstance(lhs.args[1], Const)


class TestExpansionHelpers:
    def test_expand_card(self, domain):
        t0 = domain.of(T)[0]
        atoms = expand_card(Card(enrolled, (Wildcard(P), t0)), domain)
        assert len(atoms) == 2
        assert {a.args[0].name for a in atoms} == {"player0", "player1"}

    def test_expand_wildcard_args_full(self, domain):
        combos = expand_wildcard_args(
            enrolled, (Wildcard(P), Wildcard(T)), domain
        )
        assert len(combos) == 4

    def test_expand_no_wildcards(self, domain):
        t0 = domain.of(T)[0]
        p0 = domain.of(P)[0]
        combos = expand_wildcard_args(enrolled, (p0, t0), domain)
        assert combos == [(p0, t0)]

    def test_collect_atoms_includes_card_expansion(self, domain):
        t0 = domain.of(T)[0]
        formula = Cmp("<=", Card(enrolled, (Wildcard(P), t0)), IntConst(1))
        atoms = collect_atoms(formula, domain)
        assert len(atoms) == 2

    def test_collect_numpreds(self, domain):
        t0 = domain.of(T)[0]
        formula = Cmp(">=", stock(t0), IntConst(0))
        numpreds = collect_numpreds(formula, domain)
        assert len(numpreds) == 1
