"""Unit tests for the formula AST."""

import pytest

from repro.errors import ArityError, SortError
from repro.logic.ast import (
    And,
    Atom,
    Card,
    Cmp,
    Const,
    FalseF,
    Implies,
    IntConst,
    Not,
    NumPred,
    Or,
    Param,
    PredicateDecl,
    Sort,
    TrueF,
    Var,
    Wildcard,
    conj,
    disj,
)

PLAYER = Sort("Player")
TOURN = Sort("Tournament")
player = PredicateDecl("player", (PLAYER,))
enrolled = PredicateDecl("enrolled", (PLAYER, TOURN))
stock = PredicateDecl("stock", (PLAYER,), numeric=True)
p = Var("p", PLAYER)
t = Var("t", TOURN)


class TestPredicateDecl:
    def test_call_builds_atom(self):
        atom = player(p)
        assert isinstance(atom, Atom)
        assert atom.pred is player
        assert atom.args == (p,)

    def test_call_numeric_builds_numpred(self):
        term = stock(p)
        assert isinstance(term, NumPred)

    def test_arity_checked(self):
        with pytest.raises(ArityError):
            enrolled(p)

    def test_sort_checked(self):
        with pytest.raises(SortError):
            player(t)

    def test_wildcard_sort_checked(self):
        with pytest.raises(SortError):
            enrolled(Wildcard(TOURN), Wildcard(TOURN))


class TestAtomValidation:
    def test_atom_rejects_numeric_pred(self):
        with pytest.raises(SortError):
            Atom(stock, (p,))

    def test_numpred_rejects_boolean_pred(self):
        with pytest.raises(SortError):
            NumPred(player, (p,))

    def test_card_rejects_numeric_pred(self):
        with pytest.raises(SortError):
            Card(stock, (p,))


class TestOperatorSugar:
    def test_and(self):
        formula = player(p) & enrolled(p, t)
        assert isinstance(formula, And)
        assert len(formula.args) == 2

    def test_or(self):
        formula = player(p) | enrolled(p, t)
        assert isinstance(formula, Or)

    def test_not(self):
        formula = ~player(p)
        assert isinstance(formula, Not)
        assert formula.arg == player(p)

    def test_implies(self):
        formula = enrolled(p, t) >> player(p)
        assert isinstance(formula, Implies)
        assert formula.lhs == enrolled(p, t)


class TestCmp:
    def test_valid_ops(self):
        for op in ("<=", "<", ">=", ">", "==", "!="):
            Cmp(op, stock(p), IntConst(3))

    def test_invalid_op(self):
        with pytest.raises(SortError):
            Cmp("===", stock(p), IntConst(3))

    def test_param_side(self):
        cmp = Cmp("<=", Card(enrolled, (Wildcard(PLAYER), t)), Param("Cap"))
        assert isinstance(cmp.rhs, Param)


class TestConjDisj:
    def test_conj_empty_is_true(self):
        assert isinstance(conj([]), TrueF)

    def test_conj_singleton_unwrapped(self):
        assert conj([player(p)]) == player(p)

    def test_conj_false_annihilates(self):
        assert isinstance(conj([player(p), FalseF()]), FalseF)

    def test_conj_drops_true(self):
        assert conj([TrueF(), player(p)]) == player(p)

    def test_disj_empty_is_false(self):
        assert isinstance(disj([]), FalseF)

    def test_disj_true_annihilates(self):
        assert isinstance(disj([player(p), TrueF()]), TrueF)

    def test_disj_drops_false(self):
        assert disj([FalseF(), player(p)]) == player(p)


class TestEquality:
    def test_atoms_structural_equality(self):
        assert player(p) == Atom(player, (p,))
        assert player(p) != player(Var("q", PLAYER))

    def test_atoms_hashable(self):
        c0 = Const("p0", PLAYER)
        assert len({Atom(player, (c0,)), Atom(player, (c0,))}) == 1

    def test_formula_nesting_equality(self):
        f1 = enrolled(p, t) >> (player(p) & Atom(player, (p,)))
        f2 = enrolled(p, t) >> (player(p) & Atom(player, (p,)))
        assert f1 == f2
