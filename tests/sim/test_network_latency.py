"""Latency model and network tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulator
from repro.sim.latency import (
    EU_WEST,
    LOCAL_RTT,
    US_EAST,
    US_WEST,
    GeoLatencyModel,
)
from repro.sim.network import Network


class TestGeoLatencyModel:
    def test_paper_rtts(self):
        model = GeoLatencyModel(jitter=0.0)
        assert model.rtt_between(US_EAST, US_WEST) == 80.0
        assert model.rtt_between(US_EAST, EU_WEST) == 80.0
        assert model.rtt_between(US_WEST, EU_WEST) == 160.0

    def test_rtt_symmetric(self):
        model = GeoLatencyModel(jitter=0.0)
        assert model.rtt_between(US_WEST, US_EAST) == model.rtt_between(
            US_EAST, US_WEST
        )

    def test_local_rtt(self):
        model = GeoLatencyModel(jitter=0.0)
        assert model.rtt_between(US_EAST, US_EAST) == LOCAL_RTT

    def test_one_way_is_half_rtt_without_jitter(self):
        model = GeoLatencyModel(jitter=0.0)
        assert model.one_way(US_EAST, US_WEST) == 40.0

    def test_jitter_varies_but_stays_positive(self):
        model = GeoLatencyModel(jitter=0.1, seed=3)
        samples = [model.one_way(US_EAST, US_WEST) for _ in range(100)]
        assert len(set(samples)) > 1
        assert all(s >= 0 for s in samples)
        mean = sum(samples) / len(samples)
        assert 35 < mean < 45

    def test_deterministic_given_seed(self):
        a = GeoLatencyModel(seed=9)
        b = GeoLatencyModel(seed=9)
        assert [a.one_way(US_EAST, US_WEST) for _ in range(5)] == [
            b.one_way(US_EAST, US_WEST) for _ in range(5)
        ]

    def test_unknown_pair_rejected(self):
        model = GeoLatencyModel()
        with pytest.raises(SimulationError):
            model.rtt_between(US_EAST, "mars")


class TestNetwork:
    def test_delivery_after_one_way_latency(self):
        sim = Simulator()
        network = Network(sim, GeoLatencyModel(jitter=0.0))
        received = []
        network.send(US_EAST, US_WEST, "msg", received.append)
        sim.run()
        assert received == ["msg"]
        assert sim.now == pytest.approx(40.0)

    def test_fifo_per_edge(self):
        sim = Simulator()
        network = Network(sim, GeoLatencyModel(jitter=0.3, seed=1))
        order = []
        for index in range(20):
            network.send(US_EAST, US_WEST, index, order.append)
        sim.run()
        assert order == list(range(20))

    def test_messages_counted(self):
        sim = Simulator()
        network = Network(sim, GeoLatencyModel(jitter=0.0))
        network.send(US_EAST, US_WEST, None, lambda _m: None)
        network.send(US_WEST, US_EAST, None, lambda _m: None)
        assert network.messages_sent == 2

    def test_rtt_passthrough(self):
        sim = Simulator()
        network = Network(sim, GeoLatencyModel(jitter=0.0))
        assert network.rtt(US_WEST, EU_WEST) == 160.0
