"""Fault-injection layer: plans, injector verdicts, network behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulator
from repro.sim.faults import (
    CrashWindow,
    FaultInjector,
    FaultPlan,
    PartitionWindow,
)
from repro.sim.latency import EU_WEST, GeoLatencyModel, US_EAST, US_WEST
from repro.sim.network import Network


def flat_latency():
    return GeoLatencyModel(jitter=0.0)


class TestFaultPlanValidation:
    def test_rejects_bad_probability(self):
        with pytest.raises(SimulationError):
            FaultPlan(drop=1.5)

    def test_rejects_inverted_partition_window(self):
        with pytest.raises(SimulationError):
            PartitionWindow(10.0, 5.0, (US_EAST,), (US_WEST,))

    def test_rejects_region_on_both_sides(self):
        with pytest.raises(SimulationError):
            PartitionWindow(0.0, 5.0, (US_EAST,), (US_EAST, US_WEST))

    def test_rejects_inverted_crash_window(self):
        with pytest.raises(SimulationError):
            CrashWindow(US_EAST, 10.0, 10.0)


class TestInjectorVerdicts:
    def test_clean_plan_passes_everything(self):
        injector = FaultInjector(FaultPlan())
        for _ in range(50):
            verdict = injector.on_send(US_EAST, US_WEST, 0.0)
            assert not verdict.dropped
            assert verdict.copies == ((0.0, True),)
        assert injector.dropped == 0

    def test_local_messages_never_faulted(self):
        injector = FaultInjector(FaultPlan(seed=1, drop=1.0))
        verdict = injector.on_send(US_EAST, US_EAST, 0.0)
        assert not verdict.dropped

    def test_drop_probability_respected(self):
        injector = FaultInjector(FaultPlan(seed=3, drop=0.5))
        for _ in range(400):
            injector.on_send(US_EAST, US_WEST, 0.0)
        assert 140 <= injector.dropped <= 260

    def test_same_seed_same_verdicts(self):
        plan = FaultPlan(seed=11, drop=0.3, duplicate=0.2, reorder=0.2)
        a, b = FaultInjector(plan), FaultInjector(plan)
        verdicts_a = [a.on_send(US_EAST, US_WEST, 0.0) for _ in range(200)]
        verdicts_b = [b.on_send(US_EAST, US_WEST, 0.0) for _ in range(200)]
        assert verdicts_a == verdicts_b

    def test_partition_blocks_both_ways_and_heals(self):
        plan = FaultPlan(
            partitions=(
                PartitionWindow(100.0, 200.0, (US_EAST,), (US_WEST, EU_WEST)),
            )
        )
        injector = FaultInjector(plan)
        assert not injector.on_send(US_EAST, US_WEST, 50.0).dropped
        assert injector.on_send(US_EAST, US_WEST, 150.0).dropped
        assert injector.on_send(EU_WEST, US_EAST, 150.0).dropped
        # Within one side the partition is invisible.
        assert not injector.on_send(US_WEST, EU_WEST, 150.0).dropped
        assert not injector.on_send(US_EAST, US_WEST, 200.0).dropped
        assert injector.partition_drops == 2

    def test_crash_window_query(self):
        plan = FaultPlan(crashes=(CrashWindow(EU_WEST, 100.0, 200.0),))
        injector = FaultInjector(plan)
        assert not injector.crashed(EU_WEST, 50.0)
        assert injector.crashed(EU_WEST, 150.0)
        assert not injector.crashed(EU_WEST, 200.0)
        assert not injector.crashed(US_EAST, 150.0)


class TestNetworkUnderFaults:
    def test_dropped_message_never_delivers(self):
        sim = Simulator()
        network = Network(
            sim, flat_latency(), FaultInjector(FaultPlan(seed=1, drop=1.0))
        )
        got = []
        network.send(US_EAST, US_WEST, "m", got.append)
        sim.run()
        assert got == []
        assert network.messages_dropped == 1

    def test_duplicate_delivers_twice(self):
        sim = Simulator()
        network = Network(
            sim,
            flat_latency(),
            FaultInjector(FaultPlan(seed=1, duplicate=1.0)),
        )
        got = []
        network.send(US_EAST, US_WEST, "m", got.append)
        sim.run()
        assert got == ["m", "m"]
        assert network.messages_duplicated == 1

    def test_reordering_overrides_fifo(self):
        """A reordered message may be overtaken by a later send."""
        sim = Simulator()
        plan = FaultPlan(seed=2, reorder=1.0, reorder_delay_ms=500.0)
        network = Network(sim, flat_latency(), FaultInjector(plan))
        got = []
        network.send(US_EAST, US_WEST, "slow", got.append)
        # Clean network for the second message.
        clean = Network(sim, flat_latency())
        clean.send(US_EAST, US_WEST, "fast", got.append)
        sim.run()
        assert network.messages_reordered == 1
        assert got.index("fast") < got.index("slow") or got == [
            "slow",
            "fast",
        ]

    def test_fifo_preserved_without_reordering(self):
        sim = Simulator()
        plan = FaultPlan(seed=5, duplicate=0.5)
        network = Network(sim, flat_latency(), FaultInjector(plan))
        got = []
        for i in range(20):
            network.send(US_EAST, US_WEST, i, got.append)
        sim.run()
        primaries = [m for m in dict.fromkeys(got)]
        assert primaries == sorted(primaries)


class TestDeterministicTieBreak:
    def test_equal_arrival_delivers_in_send_order(self):
        """Zero-jitter sends on one edge arrive FIFO-clamped to the
        same ordering; ties at identical instants break by send
        sequence number, not by any hash order."""
        sim = Simulator()
        network = Network(sim, flat_latency())
        got = []
        # Two edges with identical latency: us-east->us-west and
        # us-east->eu-west both take 40 ms, so all four arrivals tie.
        network.send(US_EAST, US_WEST, "a", got.append)
        network.send(US_EAST, EU_WEST, "b", got.append)
        network.send(US_EAST, US_WEST, "c", got.append)
        network.send(US_EAST, EU_WEST, "d", got.append)
        sim.run()
        # c/d are clamped behind a/b on their edges; across edges the
        # send sequence decides.
        assert got == ["a", "b", "c", "d"]

    def test_identical_runs_deliver_identically(self):
        def run():
            sim = Simulator()
            plan = FaultPlan(
                seed=13, drop=0.2, duplicate=0.2, reorder=0.3
            )
            network = Network(
                sim, GeoLatencyModel(jitter=0.1, seed=5), FaultInjector(plan)
            )
            got = []
            for i in range(100):
                target = (US_WEST, EU_WEST)[i % 2]
                network.send(US_EAST, target, i, got.append)
            sim.run()
            return got, network.messages_dropped, network.messages_reordered

        assert run() == run()


class TestFaultPlanSerialization:
    def full_plan(self):
        return FaultPlan(
            seed=42,
            drop=0.1,
            duplicate=0.05,
            reorder=0.2,
            reorder_delay_ms=120.0,
            duplicate_delay_ms=60.0,
            partitions=(
                PartitionWindow(100.0, 500.0, (US_EAST,), (US_WEST, EU_WEST)),
                PartitionWindow(600.0, 700.0, (US_WEST,), (EU_WEST,)),
            ),
            crashes=(CrashWindow(EU_WEST, 200.0, 400.0),),
        )

    def test_round_trip_preserves_every_field(self):
        plan = self.full_plan()
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        # And the dict itself is stable across the round trip.
        assert again.to_dict() == plan.to_dict()

    def test_round_trip_is_json_safe(self):
        import json

        plan = self.full_plan()
        rehydrated = FaultPlan.from_dict(
            json.loads(json.dumps(plan.to_dict()))
        )
        assert rehydrated == plan

    def test_defaults_round_trip_from_empty_dict(self):
        assert FaultPlan.from_dict({}) == FaultPlan()

    def test_from_dict_revalidates_zero_length_partition(self):
        data = self.full_plan().to_dict()
        window = data["partitions"][0]
        window["end_ms"] = window["start_ms"]  # zero-length window
        with pytest.raises(SimulationError, match="heals before"):
            FaultPlan.from_dict(data)

    def test_from_dict_revalidates_zero_length_crash(self):
        data = self.full_plan().to_dict()
        data["crashes"][0]["end_ms"] = data["crashes"][0]["start_ms"]
        with pytest.raises(SimulationError):
            FaultPlan.from_dict(data)

    def test_from_dict_revalidates_overlapping_sides(self):
        data = self.full_plan().to_dict()
        data["partitions"][0]["side_b"].append(US_EAST)  # now on both sides
        with pytest.raises(SimulationError):
            FaultPlan.from_dict(data)

    def test_from_dict_revalidates_probabilities(self):
        data = self.full_plan().to_dict()
        data["drop"] = 1.5
        with pytest.raises(SimulationError):
            FaultPlan.from_dict(data)
