"""Metrics and workload generator tests."""

import pytest

from repro.sim.metrics import LatencyStats, MetricsCollector
from repro.sim.workload import OperationMix, ZipfGenerator


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats.of([])
        assert stats.count == 0
        # No samples -> None statistics, never fabricated zeros (and
        # never an exception).
        assert stats.mean is None
        assert stats.p50 is None
        assert stats.p95 is None
        assert stats.p99 is None
        assert stats.minimum is None
        assert stats.maximum is None

    def test_basic_statistics(self):
        stats = LatencyStats.of([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.stddev == pytest.approx(1.1180, abs=1e-3)

    def test_percentiles_ordered(self):
        stats = LatencyStats.of(list(map(float, range(100))))
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum


class TestMetricsCollector:
    def test_warmup_excluded(self):
        collector = MetricsCollector(warmup_ms=100.0)
        collector.record_latency(50.0, "op", 1.0)
        collector.record_latency(150.0, "op", 2.0)
        assert collector.stats("op").count == 1

    def test_window_excluded(self):
        collector = MetricsCollector(warmup_ms=0.0, window_ms=100.0)
        collector.record_latency(50.0, "op", 1.0)
        collector.record_latency(150.0, "op", 2.0)
        assert collector.stats("op").count == 1

    def test_per_op_and_merged_stats(self):
        collector = MetricsCollector()
        collector.record_latency(1.0, "read", 1.0)
        collector.record_latency(2.0, "write", 3.0)
        assert collector.stats("read").mean == 1.0
        assert collector.stats().count == 2
        assert collector.operations() == ["read", "write"]

    def test_counters(self):
        collector = MetricsCollector()
        collector.increment(1.0, "violations")
        collector.increment(2.0, "violations", by=2)
        assert collector.counter("violations") == 3
        assert collector.counter("missing") == 0

    def test_throughput(self):
        collector = MetricsCollector()
        for index in range(10):
            collector.record_latency(float(index), "op", 1.0)
        assert collector.throughput(1_000.0) == 10.0
        assert collector.throughput(0.0) == 0.0


class TestZipfGenerator:
    def test_range(self):
        gen = ZipfGenerator(10, theta=0.9, seed=1)
        samples = [gen.sample() for _ in range(1_000)]
        assert all(0 <= s < 10 for s in samples)

    def test_skew_toward_low_indices(self):
        gen = ZipfGenerator(10, theta=1.2, seed=2)
        samples = [gen.sample() for _ in range(5_000)]
        first = samples.count(0)
        last = samples.count(9)
        assert first > 4 * max(last, 1)

    def test_theta_zero_roughly_uniform(self):
        gen = ZipfGenerator(4, theta=0.0, seed=3)
        samples = [gen.sample() for _ in range(8_000)]
        counts = [samples.count(i) for i in range(4)]
        assert max(counts) < 1.25 * min(counts)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)


class TestOperationMix:
    def test_respects_weights(self):
        mix = OperationMix({"read": 80.0, "write": 20.0}, seed=4)
        samples = [mix.sample() for _ in range(5_000)]
        read_share = samples.count("read") / len(samples)
        assert 0.75 < read_share < 0.85

    def test_write_fraction(self):
        mix = OperationMix({"read": 65.0, "a": 20.0, "b": 15.0})
        assert mix.write_fraction(["a", "b"]) == pytest.approx(0.35)

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            OperationMix({})

    def test_deterministic_given_seed(self):
        m1 = OperationMix({"x": 1.0, "y": 1.0}, seed=5)
        m2 = OperationMix({"x": 1.0, "y": 1.0}, seed=5)
        assert [m1.sample() for _ in range(20)] == [
            m2.sample() for _ in range(20)
        ]
