"""Discrete-event engine tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("late"))
        sim.schedule(1.0, lambda: log.append("early"))
        sim.run()
        assert log == ["early", "late"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("first"))
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(2.0, lambda: log.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 3.0)]

    def test_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: sim.at(7.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [7.0]

    def test_at_in_the_past_runs_now(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: sim.at(1.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [5.0]


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(10.0, lambda: log.append("b"))
        sim.run(until=5.0)
        assert log == ["a"]
        assert sim.now == 5.0
        sim.run()
        assert log == ["a", "b"]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append("x"))
        sim.cancel(handle)
        sim.run()
        assert log == []

    def test_pending_counts_live_events(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        sim.cancel(handle)
        assert sim.pending == 1
