"""Closed-loop client driver tests."""

from repro.errors import StoreError
from repro.sim.events import Simulator
from repro.sim.runner import Client, run_closed_loop


def echo_issuer(delay_ms):
    """An issuer whose 'operation' completes after a fixed delay."""

    def issue(client: Client, done):
        sim = issue.sim
        sim.schedule(delay_ms, lambda: done("op"))

    return issue


class TestClosedLoop:
    def test_throughput_matches_latency(self):
        sim = Simulator()
        issue = echo_issuer(10.0)
        issue.sim = sim
        result = run_closed_loop(
            sim, issue, {"r": 1}, duration_ms=1_000.0, warmup_ms=100.0
        )
        # One client with 10 ms ops: ~100 ops/s.
        assert 90 <= result.throughput <= 110
        assert result.stats().mean == 10.0

    def test_more_clients_more_throughput(self):
        sim = Simulator()
        issue = echo_issuer(10.0)
        issue.sim = sim
        result = run_closed_loop(
            sim, issue, {"r": 4}, duration_ms=1_000.0, warmup_ms=100.0
        )
        assert 360 <= result.throughput <= 440
        assert result.total_clients == 4

    def test_think_time_reduces_rate(self):
        sim = Simulator()
        issue = echo_issuer(10.0)
        issue.sim = sim
        result = run_closed_loop(
            sim, issue, {"r": 1},
            duration_ms=1_000.0, warmup_ms=100.0, think_ms=90.0,
        )
        # 10 ms op + 90 ms think: ~10 ops/s.
        assert 8 <= result.throughput <= 12

    def test_clients_spread_across_regions(self):
        sim = Simulator()
        regions_seen = set()

        def issue(client: Client, done):
            regions_seen.add(client.region)
            sim.schedule(1.0, lambda: done("op"))

        run_closed_loop(
            sim, issue, {"east": 1, "west": 1},
            duration_ms=50.0, warmup_ms=0.0,
        )
        assert regions_seen == {"east", "west"}

    def test_latency_recorded_per_operation_name(self):
        sim = Simulator()
        toggle = [0]

        def issue(client: Client, done):
            toggle[0] += 1
            name = "a" if toggle[0] % 2 else "b"
            sim.schedule(5.0, lambda: done(name))

        result = run_closed_loop(
            sim, issue, {"r": 1}, duration_ms=500.0, warmup_ms=0.0
        )
        assert result.stats("a").count > 0
        assert result.stats("b").count > 0


class TestFaultyIssuers:
    def test_retry_when_region_unavailable(self):
        """Submit raising StoreError (region down) backs off and
        retries until the region returns."""
        sim = Simulator()
        down_until = 300.0

        def issue(client: Client, done):
            if sim.now < down_until:
                raise StoreError("region down")
            sim.schedule(5.0, lambda: done("op"))

        result = run_closed_loop(
            sim, issue, {"r": 1},
            duration_ms=1_000.0, warmup_ms=0.0, retry_ms=50.0,
        )
        assert result.metrics.counter("client.retries") >= 5
        assert result.stats("op").count > 0

    def test_timeout_reissues_lost_operation(self):
        """A swallowed response triggers the timeout path, and the
        client keeps going instead of wedging forever."""
        sim = Simulator()
        calls = [0]

        def issue(client: Client, done):
            calls[0] += 1
            if calls[0] == 1:
                return  # the reply is lost: done() never fires
            sim.schedule(5.0, lambda: done("op"))

        result = run_closed_loop(
            sim, issue, {"r": 1},
            duration_ms=1_000.0, warmup_ms=0.0, timeout_ms=100.0,
        )
        assert result.metrics.counter("client.timeouts") == 1
        assert result.stats("op").count > 0

    def test_straggler_response_after_timeout_ignored(self):
        """A response arriving after its attempt timed out is dropped:
        no double-completion, no duplicate latency sample."""
        sim = Simulator()
        calls = [0]

        def issue(client: Client, done):
            calls[0] += 1
            if calls[0] == 1:
                # Responds long after the 100 ms timeout.
                sim.schedule(400.0, lambda: done("op"))
            else:
                sim.schedule(5.0, lambda: done("op"))

        result = run_closed_loop(
            sim, issue, {"r": 1},
            duration_ms=1_000.0, warmup_ms=0.0, timeout_ms=100.0,
        )
        assert result.metrics.counter("client.timeouts") == 1
        # Every recorded latency comes from the fast path: the 400 ms
        # straggler was not recorded.
        assert result.stats("op").maximum < 400.0
