"""Error-hierarchy tests: one base class catches everything."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        leaf_classes = [
            errors.SpecError,
            errors.ParseError,
            errors.SortError,
            errors.ArityError,
            errors.SolverError,
            errors.GroundingError,
            errors.AnalysisError,
            errors.UnsolvableConflictError,
            errors.CRDTError,
            errors.StoreError,
            errors.TransactionError,
            errors.ReservationError,
            errors.SimulationError,
        ]
        for cls in leaf_classes:
            assert issubclass(cls, errors.ReproError)

    def test_subsystem_groupings(self):
        assert issubclass(errors.ParseError, errors.SpecError)
        assert issubclass(errors.GroundingError, errors.SolverError)
        assert issubclass(errors.TransactionError, errors.StoreError)
        assert issubclass(errors.ReservationError, errors.StoreError)
        assert issubclass(
            errors.UnsolvableConflictError, errors.AnalysisError
        )

    def test_parse_error_position(self):
        error = errors.ParseError("bad token", position=17)
        assert error.position == 17
        assert "offset 17" in str(error)

    def test_parse_error_without_position(self):
        error = errors.ParseError("bad token")
        assert error.position is None
        assert str(error) == "bad token"

    def test_library_raises_only_repro_errors(self):
        """A representative sample of failure paths stays inside the
        hierarchy (so callers can catch ReproError)."""
        from repro.logic.parser import SymbolTable, parse_formula
        from repro.spec import SpecBuilder

        with pytest.raises(errors.ReproError):
            parse_formula("forall(", SymbolTable(predicates={}))
        with pytest.raises(errors.ReproError):
            builder = SpecBuilder("x")
            builder.predicate("p", "S")
            builder.predicate("p", "S")
