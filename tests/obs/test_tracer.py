"""Tracer behaviour: spans, disabled fast path, worker stitching, export."""

import json
import os

import pytest

from repro.obs import (
    NULL_SPAN,
    SpanRecord,
    Tracer,
    chrome_trace,
    read_jsonl,
    summarize,
    write_chrome_trace,
    write_jsonl,
)


@pytest.fixture
def tracer():
    t = Tracer()
    t.configure(enabled=True)
    yield t
    t.disable()


class TestSpans:
    def test_span_records_name_duration_and_attrs(self, tracer):
        with tracer.span("analysis.pair", op1="a", op2="b") as span:
            span.set(conflict=True)
        (record,) = tracer.spans()
        assert record.name == "analysis.pair"
        assert record.status == "ok"
        assert record.attrs == {"op1": "a", "op2": "b", "conflict": True}
        assert record.dur_us >= 0
        assert record.pid == os.getpid()

    def test_nested_spans_share_timeline(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()  # inner closes first
        assert (inner.name, outer.name) == ("inner", "outer")
        # The child starts no earlier and ends no later than the parent.
        assert inner.start_us >= outer.start_us
        assert (
            inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us
        )

    def test_exception_marks_span_error_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("solver.check"):
                raise ValueError("boom")
        (record,) = tracer.spans()
        assert record.status == "error"
        assert record.attrs["exception"] == "ValueError"

    def test_start_end_form(self, tracer):
        handle = tracer.start("store.txn", replica="us-east")
        tracer.end(handle, op="enroll")
        (record,) = tracer.spans()
        assert record.name == "store.txn"
        assert record.attrs == {"replica": "us-east", "op": "enroll"}

    def test_instant_marker(self, tracer):
        tracer.instant("store.crash", region="eu-west")
        (record,) = tracer.spans()
        assert record.dur_us == 0
        assert record.attrs == {"region": "eu-west"}

    def test_clear(self, tracer):
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.spans() == []


class TestDisabled:
    def test_disabled_span_is_the_null_singleton(self):
        t = Tracer()
        assert t.span("anything", a=1) is NULL_SPAN
        # The null span accepts the full protocol without recording.
        with t.span("anything") as span:
            span.set(b=2)
        assert t.spans() == []

    def test_disabled_start_returns_none_and_end_tolerates_it(self):
        t = Tracer()
        handle = t.start("store.txn")
        assert handle is None
        t.end(handle, op="x")  # must not raise
        t.instant("marker")
        assert t.spans() == []

    def test_disable_keeps_collected_spans_readable(self, tracer):
        with tracer.span("kept"):
            pass
        tracer.disable()
        assert [s.name for s in tracer.spans()] == ["kept"]

    def test_configure_resets_the_trace(self, tracer):
        with tracer.span("old"):
            pass
        tracer.configure(enabled=True)
        assert tracer.spans() == []


class TestWorkerStitching:
    def _spooled(self, tracer, pid, name, start_us):
        """Write one spool line the way a forked worker would."""
        record = SpanRecord(
            name=name, start_us=start_us, dur_us=7, pid=pid, tid=1
        )
        path = os.path.join(tracer._spool_dir, f"spans-{pid}.jsonl")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")

    def test_drain_merges_and_sorts_deterministically(self, tracer):
        with tracer.span("analysis.run"):
            pass
        # Two "workers" whose files appear in either order must stitch
        # into the same trace: spans() sorts by (start, pid, tid, name).
        # Large timestamps keep the fakes after the parent's real span.
        self._spooled(tracer, 99999, "analysis.pair", start_us=9_000_005)
        self._spooled(tracer, 11111, "analysis.pair", start_us=9_000_005)
        self._spooled(tracer, 99999, "analysis.pair", start_us=9_000_002)
        merged = tracer.drain_workers()
        assert merged == 3
        spans = tracer.spans()
        assert [(s.start_us, s.pid) for s in spans[-3:]] == [
            (9_000_002, 99999),
            (9_000_005, 11111),
            (9_000_005, 99999),
        ]
        # Idempotent: the spool files were consumed.
        assert tracer.drain_workers() == 0
        assert len(tracer.spans()) == 4

    def test_spans_snapshot_includes_spool(self, tracer):
        self._spooled(tracer, 4242, "solver.check", start_us=1)
        names = {s.name for s in tracer.spans()}
        assert names == {"solver.check"}


class TestExport:
    def _sample_spans(self, tracer):
        with tracer.span("analysis.scan", round=1):
            with tracer.span("solver.check", sat=True):
                pass
        with pytest.raises(RuntimeError):
            with tracer.span("store.txn"):
                raise RuntimeError
        return tracer.spans()

    def test_jsonl_round_trip(self, tracer, tmp_path):
        spans = self._sample_spans(tracer)
        path = str(tmp_path / "spans.jsonl")
        write_jsonl(spans, path)
        assert read_jsonl(path) == spans

    def test_chrome_trace_shape(self, tracer):
        spans = self._sample_spans(tracer)
        doc = chrome_trace(spans)
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        # One process_name metadata record per pid.
        assert len(meta) == 1
        assert meta[0]["name"] == "process_name"
        assert len(slices) == len(spans)
        by_name = {e["name"]: e for e in slices}
        # Category = first dotted segment; errors surface in args.
        assert by_name["solver.check"]["cat"] == "solver"
        assert by_name["analysis.scan"]["args"] == {"round": 1}
        assert by_name["store.txn"]["args"]["status"] == "error"

    def test_chrome_trace_file_round_trips_through_json(
        self, tracer, tmp_path
    ):
        spans = self._sample_spans(tracer)
        path = str(tmp_path / "trace.json")
        write_chrome_trace(spans, path)
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc == json.loads(json.dumps(chrome_trace(spans)))
        assert doc["displayTimeUnit"] == "ms"

    def test_summary_table(self, tracer):
        spans = self._sample_spans(tracer)
        text = summarize(spans)
        assert "analysis.scan" in text
        assert "(1 error(s))" in text
        assert "3 span(s)" in text
        assert summarize([]) == "(no spans recorded)"
