"""Lint: ``repro.obs`` is the single sanctioned wall-clock source.

Every module that measures wall time imports ``monotonic`` from
``repro.obs`` (an alias of ``time.perf_counter``); directly calling
``time.perf_counter`` anywhere else splits the codebase across clock
sources and bypasses the tracer's timeline.  This test (and the
matching grep step in CI) fails on any new bare use outside
``src/repro/obs/``.
"""

from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SCANNED = ("src", "benchmarks", "tests")
ALLOWED = (Path("src") / "repro" / "obs",)
FORBIDDEN = "time.perf_counter"


def offending_files() -> list[str]:
    offenders = []
    for top in SCANNED:
        for path in sorted((REPO_ROOT / top).rglob("*.py")):
            relative = path.relative_to(REPO_ROOT)
            if any(
                allowed in relative.parents for allowed in ALLOWED
            ):
                continue
            if FORBIDDEN in path.read_text(encoding="utf-8"):
                offenders.append(str(relative))
    return offenders


def test_no_bare_perf_counter_outside_obs():
    offenders = offending_files()
    # This file mentions the forbidden name by necessity; nothing else
    # may.
    this_file = str(Path(__file__).resolve().relative_to(REPO_ROOT))
    offenders = [name for name in offenders if name != this_file]
    assert offenders == [], (
        "bare time.perf_counter outside repro.obs (import `monotonic` "
        f"from repro.obs instead): {offenders}"
    )
