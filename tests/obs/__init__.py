"""Observability layer tests."""
