"""Metrics registry: instruments, snapshots, and the shared quantile."""

import pytest

from repro.obs import MetricsRegistry, quantile, quantile_sorted
from repro.obs.registry import HISTOGRAM_RESERVOIR


class TestQuantile:
    def test_empty_returns_none(self):
        # Never an exception, never a fabricated zero.
        assert quantile([], 0.5) is None
        assert quantile_sorted([], 0.99) is None

    def test_single_sample(self):
        assert quantile([7.0], 0.0) == 7.0
        assert quantile([7.0], 1.0) == 7.0

    def test_nearest_rank_with_rounding(self):
        ordered = list(map(float, range(101)))
        assert quantile_sorted(ordered, 0.50) == 50.0
        assert quantile_sorted(ordered, 0.95) == 95.0
        assert quantile_sorted(ordered, 1.0) == 100.0

    def test_unsorted_input_is_sorted_first(self):
        assert quantile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_extreme_q_is_clamped(self):
        assert quantile_sorted([1.0, 2.0], 5.0) == 2.0
        assert quantile_sorted([1.0, 2.0], -5.0) == 1.0


class TestInstruments:
    def test_counter(self):
        registry = MetricsRegistry()
        c = registry.counter("net.messages_sent")
        c.inc()
        c.value += 2  # the hot-path form
        assert registry.counter("net.messages_sent") is c
        assert registry.counter_value("net.messages_sent") == 3
        assert registry.counter_value("never.touched") == 0

    def test_gauge(self):
        registry = MetricsRegistry()
        g = registry.gauge("store.convergence.lag_ms")
        assert g.value is None  # never observed
        g.set(12.5)
        assert registry.gauge("store.convergence.lag_ms").value == 12.5

    def test_histogram_aggregates(self):
        registry = MetricsRegistry()
        h = registry.histogram("client.latency_ms")
        for value in (1.0, 2.0, 3.0, 4.0):
            h.record(value)
        assert h.count == 4
        assert h.mean == 2.5
        assert (h.minimum, h.maximum) == (1.0, 4.0)
        assert h.percentile(0.5) == pytest.approx(3.0)

    def test_histogram_empty(self):
        h = MetricsRegistry().histogram("empty")
        assert h.mean is None
        assert h.percentile(0.95) is None
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["p95"] is None

    def test_histogram_reservoir_bounds_memory(self):
        h = MetricsRegistry().histogram("big")
        for index in range(HISTOGRAM_RESERVOIR + 100):
            h.record(float(index))
        # Exact aggregates keep counting past the reservoir ...
        assert h.count == HISTOGRAM_RESERVOIR + 100
        assert h.maximum == float(HISTOGRAM_RESERVOIR + 99)
        # ... while the sample buffer stops growing.
        assert len(h.samples) == HISTOGRAM_RESERVOIR


class TestRegistry:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a.hits").inc(5)
        registry.gauge("b.depth").set(2.0)
        registry.histogram("c.ms").record(10.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"a.hits": 5}
        assert snap["gauges"] == {"b.depth": 2.0}
        assert snap["histograms"]["c.ms"]["count"] == 1
        # JSON-safe throughout.
        import json

        json.dumps(snap)

    def test_counters_view_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc(2)
        assert list(registry.counters()) == ["a.first", "z.last"]
        assert registry.counters() == {"a.first": 2, "z.last": 1}

    def test_names_union(self):
        registry = MetricsRegistry()
        registry.counter("one")
        registry.gauge("two")
        registry.histogram("three")
        assert registry.names() == ["one", "three", "two"]

    def test_merge_counters(self):
        registry = MetricsRegistry()
        registry.counter("shared").inc(1)
        registry.merge_counters([("shared", 4), ("worker.only", 2)])
        assert registry.counter_value("shared") == 5
        assert registry.counter_value("worker.only") == 2

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.clear()
        assert registry.names() == []
        assert registry.counter_value("x") == 0
