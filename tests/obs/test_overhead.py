"""Regression gate: the disabled tracer stays (near-)free.

The design contract (see ``src/repro/obs/tracer.py``) is that
instrumentation can live permanently on hot paths because a disabled
``span()`` is one attribute load, one branch, and the shared null
singleton.  This microbenchmark pins that: the disabled path must be
several times cheaper than the enabled path on the same machine (a
machine-relative gate, robust to slow CI runners) and cheap in absolute
terms by a deliberately loose bound.  If someone replaces the
null-object fast path with real work -- allocating a span, reading the
clock -- the ratio collapses and this test fails.
"""

from repro.obs import Tracer, monotonic

CALLS = 50_000
REPEATS = 5


def best_cost_per_call(fn) -> float:
    """Seconds per call, best of ``REPEATS`` (min defeats CI noise)."""
    best = None
    for _ in range(REPEATS):
        started = monotonic()
        for _ in range(CALLS):
            fn()
        elapsed = (monotonic() - started) / CALLS
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_disabled_span_overhead_vs_enabled():
    disabled = Tracer()

    def disabled_span():
        with disabled.span("bench.noop"):
            pass

    enabled = Tracer()
    enabled.configure(enabled=True)

    def enabled_span():
        with enabled.span("bench.noop"):
            pass

    disabled_cost = best_cost_per_call(disabled_span)
    enabled_cost = best_cost_per_call(enabled_span)
    enabled.disable()

    print(
        "\ndisabled span: %.0f ns/call, enabled span: %.0f ns/call "
        "(x%.1f)"
        % (
            disabled_cost * 1e9,
            enabled_cost * 1e9,
            enabled_cost / disabled_cost,
        )
    )
    # Machine-relative: disabled must be at least 2x cheaper than
    # enabled (in practice 5-10x -- the threshold is deliberately slack).
    assert disabled_cost * 2.0 <= enabled_cost
    # Absolute sanity: well under the cost of any simulated operation.
    assert disabled_cost < 5e-6


def test_disabled_start_end_overhead():
    tracer = Tracer()

    def start_end():
        handle = tracer.start("bench.noop")
        tracer.end(handle)

    cost = best_cost_per_call(start_end)
    print("\ndisabled start/end: %.0f ns/call" % (cost * 1e9))
    assert cost < 5e-6
