"""Satellite 3: a traced multi-process live run stitches into one trace.

A 3-region subprocess cluster (one ``repro serve`` worker per region)
runs a recorded schedule under a lossy chaos plan with tracing spooled
per process.  The harness must leave behind a single Perfetto-loadable
``trace.json`` whose tracks span every replica process plus the
orchestrator, with cross-process flow arrows linking a client txn to
its commit and the commit to each remote apply.
"""

import asyncio
import json

import pytest

from repro import obs
from repro.check.explorer import PLAN_KINDS, build_trial
from repro.net.harness import run_live
from repro.net.oracle import record_trial


@pytest.fixture
def global_tracer_guard():
    """run_live(trace_dir=...) configures the process-global TRACER;
    leave the process as quiet as it was found."""
    yield
    obs.TRACER.disable()
    obs.TRACER.clear()


def run_traced(tmp_path, index, **kwargs):
    spec = build_trial("tournament", "Causal", 11, index, n_ops=25)
    _, deployment = record_trial(spec)
    trace_dir = str(tmp_path / "trace")
    report = asyncio.run(
        run_live(
            deployment,
            str(tmp_path),
            time_scale=0.02,
            deadline_s=kwargs.pop("deadline_s", 60.0),
            trace_dir=trace_dir,
            **kwargs,
        )
    )
    return deployment, report, trace_dir


def load_trace(report):
    with open(report.trace, encoding="utf-8") as handle:
        doc = json.load(handle)
    assert isinstance(doc["traceEvents"], list)
    return doc


def events_by_phase(doc, phase):
    return [e for e in doc["traceEvents"] if e.get("ph") == phase]


@pytest.mark.timeout(120)
class TestStitchedSubprocessTrace:
    def test_lossy_subprocess_run_yields_one_fleet_trace(
        self, tmp_path, global_tracer_guard
    ):
        assert PLAN_KINDS[1] == "lossy"
        deployment, report, trace_dir = run_traced(
            tmp_path, index=1, subprocess_servers=True
        )
        assert report.ok, report.reason
        assert report.digest_match
        doc = load_trace(report)

        # One trace, tracks for all three replica processes + harness.
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        regions = set(deployment["trial"]["regions"])
        assert {f"serve-{r}" for r in regions} <= names
        assert "harness" in names

        slices = events_by_phase(doc, "X")
        pid_of = {}
        for e in doc["traceEvents"]:
            if e.get("ph") == "M" and e.get("name") == "process_name":
                pid_of.setdefault(e["args"]["name"], e["pid"])
        server_pids = {pid_of[f"serve-{r}"] for r in regions}
        sliced_pids = {e["pid"] for e in slices}
        assert server_pids <= sliced_pids, "every replica contributed spans"
        assert len(sliced_pids) >= 4  # 3 servers + orchestrator

        # Client txn -> server exec: the op:{index} flow links a
        # harness-side net.client.op span to a replica-side net.op.
        flow_out = {
            e["args"].get("flow_out"): e
            for e in slices
            if e["args"].get("flow_out")
        }
        flow_in = {}
        for e in slices:
            fin = e["args"].get("flow_in")
            if fin:
                flow_in.setdefault(fin, []).append(e)
        op_links = [
            (flow_out[fid], ins[0])
            for fid, ins in flow_in.items()
            if fid.startswith("op:") and fid in flow_out
        ]
        assert op_links
        assert any(
            src["name"] == "net.client.op"
            and dst["name"] == "net.op"
            and src["pid"] != dst["pid"]
            for src, dst in op_links
        )

        # Commit -> remote apply: the rec:{origin}:{counter} flow
        # crosses from the committing replica to a *different* replica
        # process's net.apply span.
        rec_links = [
            (flow_out[fid], dst)
            for fid, ins in flow_in.items()
            if fid.startswith("rec:") and fid in flow_out
            for dst in ins
        ]
        assert rec_links
        assert any(
            src["name"] == "net.op"
            and dst["name"] == "net.apply"
            and src["pid"] != dst["pid"]
            and src["pid"] in server_pids
            and dst["pid"] in server_pids
            for src, dst in rec_links
        )

        # The flow arrows themselves made it into the chrome doc.
        start_ids = {e["id"] for e in events_by_phase(doc, "s")}
        finish_ids = {e["id"] for e in events_by_phase(doc, "f")}
        assert start_ids & finish_ids

        # Lossy plan: the chaos proxy annotated at least one injected
        # fault as an instant event on its own track.
        instants = events_by_phase(doc, "i")
        chaos = [
            e for e in instants if e["name"].startswith("net.chaos.")
        ]
        assert chaos, "lossy plan produced no annotated faults"
        assert all(e["args"].get("link") for e in chaos)

        # Raw per-process spools survive as the archive.
        spools = [
            p for p in (tmp_path / "trace").iterdir()
            if p.name.startswith("spans-") and p.suffix == ".jsonl"
        ]
        assert len(spools) >= 4

    def test_in_process_run_traces_without_subprocesses(
        self, tmp_path, global_tracer_guard
    ):
        _, report, trace_dir = run_traced(tmp_path, index=0)
        assert report.ok, report.reason
        doc = load_trace(report)
        slices = events_by_phase(doc, "X")
        assert {e["name"] for e in slices} >= {
            "net.client.op", "net.op", "net.apply",
        }

    def test_untraced_run_writes_no_trace(self, tmp_path):
        spec = build_trial("tournament", "Causal", 11, 0, n_ops=15)
        _, deployment = record_trial(spec)
        report = asyncio.run(
            run_live(deployment, str(tmp_path), time_scale=0.02)
        )
        assert report.ok, report.reason
        assert report.trace is None
        assert not (tmp_path / "trace").exists()
