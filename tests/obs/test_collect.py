"""Fleet stitching: spool files, clock alignment, flows, instants."""

import json
import os

import pytest

from repro.obs import (
    SpanRecord,
    Tracer,
    chrome_trace,
    dump_process,
    read_spool,
    stitch_dir,
    write_stitched,
)


def make_process(spool_dir, name, epoch_unix_us, spans):
    """Hand-write one process's spool file (meta line + spans)."""
    proc = f"{os.getpid()}-{epoch_unix_us:x}"
    path = os.path.join(spool_dir, f"spans-{proc}.jsonl")
    meta = {
        "meta": 1,
        "proc": proc,
        "pid": os.getpid(),
        "name": name,
        "epoch_unix_us": epoch_unix_us,
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(meta) + "\n")
        for span in spans:
            handle.write(json.dumps(span.as_dict()) + "\n")
    return path


def span(name, start_us, pid=1, dur_us=10, attrs=None, kind="span"):
    return SpanRecord(
        name=name,
        start_us=start_us,
        dur_us=dur_us,
        pid=pid,
        tid=7,
        attrs=attrs or {},
        kind=kind,
    )


class TestSpoolFormat:
    def test_spool_mode_writes_meta_line_first(self, tmp_path):
        tracer = Tracer()
        tracer.configure(
            enabled=True,
            spool_dir=str(tmp_path),
            spool=True,
            process="serve-us-east",
        )
        with tracer.span("net.op", index=3):
            pass
        tracer.instant("store.conflict.violation", invariant="cap")
        tracer.disable()
        meta, spans = read_spool(
            str(tmp_path / f"spans-{tracer.proc}.jsonl")
        )
        assert meta["name"] == "serve-us-east"
        assert meta["proc"] == tracer.proc
        assert meta["epoch_unix_us"] == tracer.epoch_unix_us
        assert [s.name for s in spans] == [
            "net.op", "store.conflict.violation",
        ]
        assert spans[1].kind == "instant"

    def test_read_spool_tolerates_torn_tail(self, tmp_path):
        path = make_process(
            str(tmp_path), "serve-a", 1_000_000, [span("net.op", 5)]
        )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"name": "net.apply", "start_us": 9')  # SIGKILL
        meta, spans = read_spool(path)
        assert meta is not None
        assert [s.name for s in spans] == ["net.op"]

    def test_dump_process_round_trips_in_memory_spans(self, tmp_path):
        tracer = Tracer()
        tracer.configure(enabled=True)
        with tracer.span("net.client.op", index=0):
            pass
        path = dump_process(str(tmp_path), name="harness", tracer=tracer)
        tracer.disable()
        meta, spans = read_spool(path)
        assert meta["name"] == "harness"
        assert [s.name for s in spans] == ["net.client.op"]
        assert spans == tracer.spans()


class TestStitching:
    def test_aligns_clocks_and_assigns_synthetic_pids(self, tmp_path):
        # Process B's epoch is 500us after A's: a span at local t=100
        # in B lands at t=600 on the shared timeline.
        make_process(
            str(tmp_path), "serve-a", 1_000_000, [span("net.op", 100)]
        )
        make_process(
            str(tmp_path), "serve-b", 1_000_500, [span("net.apply", 100)]
        )
        stitched = stitch_dir(str(tmp_path))
        assert stitched.process_names == {1: "serve-a", 2: "serve-b"}
        by_name = {s.name: s for s in stitched.spans}
        assert by_name["net.op"].start_us == 100
        assert by_name["net.apply"].start_us == 600
        assert by_name["net.op"].pid == 1
        assert by_name["net.apply"].pid == 2

    def test_restart_incarnation_gets_its_own_track(self, tmp_path):
        # Same display name, two incarnations (a SIGKILL+restart):
        # distinct proc prefixes must stay distinct tracks even if the
        # OS recycled the pid.
        make_process(
            str(tmp_path), "serve-a", 1_000_000, [span("net.op", 1)]
        )
        make_process(
            str(tmp_path), "serve-a", 2_000_000, [span("net.op", 2)]
        )
        stitched = stitch_dir(str(tmp_path))
        assert len(stitched.procs) == 2
        assert {s.pid for s in stitched.spans} == {1, 2}
        assert stitched.process_names[1] == stitched.process_names[2]

    def test_write_stitched_produces_loadable_chrome_json(self, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        make_process(
            str(spool), "serve-a", 1_000_000,
            [span("net.op", 5, attrs={"flow_out": "rec:a:1"})],
        )
        out = tmp_path / "trace.json"
        stitched = write_stitched(str(spool), str(out))
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert len(stitched.spans) == 1
        # Stitching never consumes the spool (it is the archive).
        assert list(spool.glob("*.jsonl"))

    def test_empty_dir_stitches_empty(self, tmp_path):
        stitched = stitch_dir(str(tmp_path))
        assert stitched.spans == []
        assert stitched.chrome()["traceEvents"] == []


class TestFlowAndInstantEvents:
    def test_flow_attrs_emit_start_and_finish_events(self):
        spans = [
            span("net.op", 10, pid=1, attrs={"flow_out": "rec:a:1"}),
            span("net.apply", 40, pid=2, attrs={"flow_in": "rec:a:1"}),
        ]
        events = chrome_trace(spans)["traceEvents"]
        starts = [e for e in events if e.get("ph") == "s"]
        finishes = [e for e in events if e.get("ph") == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"] == "rec:a:1"
        assert starts[0]["pid"] == 1
        assert finishes[0]["pid"] == 2
        assert finishes[0]["bp"] == "e"

    def test_instant_kind_emits_i_event_not_slice(self):
        spans = [span("net.chaos.drop", 10, kind="instant", dur_us=0)]
        events = chrome_trace(spans)["traceEvents"]
        phases = [e["ph"] for e in events if e["ph"] != "M"]
        assert phases == ["i"]

    def test_zero_duration_span_is_still_a_slice(self):
        # Sub-microsecond spans round to dur 0 but remain X events --
        # only the explicit instant kind switches phase.
        spans = [span("solver.check", 10, dur_us=0)]
        events = chrome_trace(spans)["traceEvents"]
        phases = [e["ph"] for e in events if e["ph"] != "M"]
        assert phases == ["X"]


class TestFlowIds:
    def test_new_flow_ids_are_process_namespaced(self, tmp_path):
        a, b = Tracer(), Tracer()
        a.configure(enabled=True)
        b.configure(enabled=True)
        b.epoch_unix_us = a.epoch_unix_us + 1  # force distinct procs
        ids = {a.new_flow("sync"), b.new_flow("sync")}
        assert len(ids) == 2  # same pid, same seq -- still distinct
        a.disable()
        b.disable()

    def test_new_flow_returns_none_while_disabled(self):
        assert Tracer().new_flow("sync") is None


class TestOrdering:
    def test_tracks_ordered_by_epoch_then_proc(self, tmp_path):
        make_process(str(tmp_path), "late", 3_000_000, [span("b", 1)])
        make_process(str(tmp_path), "early", 1_000_000, [span("a", 1)])
        stitched = stitch_dir(str(tmp_path))
        assert stitched.process_names == {1: "early", 2: "late"}


@pytest.mark.parametrize("payload", ["not json at all", '{"meta": 1'])
def test_unreadable_first_line_yields_no_meta(tmp_path, payload):
    path = tmp_path / "spans-x.jsonl"
    path.write_text(payload + "\n")
    meta, spans = read_spool(str(path))
    assert meta is None
    assert spans == []
