"""ConflictChecker configuration behaviour: parameter clipping and
integer-bound auto-sizing."""

from repro.analysis.conflicts import ANALYSIS_PARAM_CAP, ConflictChecker
from repro.spec import SpecBuilder


def capacity_spec(capacity):
    b = SpecBuilder("cap")
    b.predicate("enrolled", "Player", "Tournament")
    b.parameter("Capacity", capacity)
    b.invariant("forall(Tournament: t) :- #enrolled(*, t) <= Capacity")
    b.operation(
        "enroll", "Player: p, Tournament: t", true=["enrolled(p, t)"]
    )
    return b.build()


class TestParamClipping:
    def test_large_params_clipped_for_analysis(self):
        checker = ConflictChecker(capacity_spec(1_000))
        assert checker.params["Capacity"] == ANALYSIS_PARAM_CAP

    def test_small_params_kept(self):
        checker = ConflictChecker(capacity_spec(1))
        assert checker.params["Capacity"] == 1

    def test_explicit_override_wins(self):
        checker = ConflictChecker(capacity_spec(1_000), params={"Capacity": 3})
        assert checker.params["Capacity"] == 3

    def test_clipping_preserves_conflict_detection(self):
        """A conflict that exists for Capacity=1000 is still found with
        the clipped analysis value (the violation only needs the bound
        to be representable)."""
        spec = capacity_spec(1_000)
        checker = ConflictChecker(spec)
        witness = checker.is_conflicting(
            spec.operation("enroll"), spec.operation("enroll")
        )
        assert witness is not None


class TestIntBoundAutoSizing:
    def stock_spec(self, delta):
        b = SpecBuilder("stock")
        b.predicate("stock", "Item", numeric=True)
        b.invariant("forall(Item: i) :- stock(i) >= 0")
        b.operation("buy", "Item: i", decr=["stock(i)"])
        b.operation("restock", "Item: i", incr=[f"stock(i) {delta}"])
        return b.build()

    def test_bound_covers_large_deltas(self):
        spec = self.stock_spec(10)
        checker = ConflictChecker(spec)
        assert checker._int_bound >= 2 * 10

    def test_restock_executable_despite_large_delta(self):
        """The auto-sized bound keeps restock representable (with the
        default bound of 8 the +10 delta would make the operation look
        unexecutable)."""
        spec = self.stock_spec(10)
        checker = ConflictChecker(spec)
        assert checker.is_executable(spec.operation("restock"))

    def test_explicit_bound_respected(self):
        spec = self.stock_spec(2)
        checker = ConflictChecker(spec, int_bound=20)
        assert checker._int_bound == 20

    def test_queries_counted(self):
        spec = capacity_spec(1)
        checker = ConflictChecker(spec)
        assert checker.queries_issued == 0
        checker.is_conflicting(
            spec.operation("enroll"), spec.operation("enroll")
        )
        assert checker.queries_issued >= 1
