"""Interactive session tests."""

import pytest

from repro.analysis.conflicts import ConflictChecker
from repro.analysis.session import IpaSession
from repro.errors import AnalysisError
from repro.spec import SpecBuilder

from tests.conftest import make_mini_tournament_spec


class TestSessionFlow:
    def test_choose_figure2b(self):
        session = IpaSession(make_mini_tournament_spec())
        conflict = session.next_conflict()
        assert conflict is not None
        options = session.options()
        assert len(options) == 2
        # Pick the enroll-side repair explicitly (Figure 2b).
        index = next(
            i for i, r in enumerate(options)
            if r.modified_op.original_name == "enroll"
        )
        chosen = session.choose(index)
        assert chosen.modified_op.original_name == "enroll"
        assert session.next_conflict() is None
        patched = session.finish()
        assert ConflictChecker(patched).find_conflicts() == []

    def test_choose_figure2c_instead(self):
        """The programmer may prefer the other semantics."""
        session = IpaSession(make_mini_tournament_spec())
        session.next_conflict()
        options = session.options()
        index = next(
            i for i, r in enumerate(options)
            if r.modified_op.original_name == "rem_tourn"
        )
        session.choose(index)
        assert session.next_conflict() is None
        patched = session.finish()
        from repro.spec.effects import ConvergencePolicy

        assert patched.rules.policy("enrolled") is (
            ConvergencePolicy.REM_WINS
        )

    def test_flag_generates_compensation(self):
        b = SpecBuilder("cap")
        b.predicate("enrolled", "Player", "Tournament")
        b.parameter("Capacity", 1)
        b.invariant(
            "forall(Tournament: t) :- #enrolled(*, t) <= Capacity"
        )
        b.operation(
            "enroll", "Player: p, Tournament: t", true=["enrolled(p, t)"]
        )
        session = IpaSession(b.build())
        assert session.next_conflict() is not None
        compensations = session.flag()
        assert compensations and compensations[0].kind == "trim-collection"
        assert session.done
        session.finish()
        assert session.compensations() == compensations

    def test_log_records_decisions(self):
        session = IpaSession(make_mini_tournament_spec())
        session.next_conflict()
        session.choose(0)
        assert len(session.log) == 1
        assert session.log[0].resolution is not None


class TestSessionErrors:
    def test_options_before_next_conflict(self):
        session = IpaSession(make_mini_tournament_spec())
        with pytest.raises(AnalysisError):
            session.options()

    def test_choose_without_conflict(self):
        session = IpaSession(make_mini_tournament_spec())
        with pytest.raises(AnalysisError):
            session.choose(0)

    def test_double_next_conflict(self):
        session = IpaSession(make_mini_tournament_spec())
        session.next_conflict()
        with pytest.raises(AnalysisError, match="resolve"):
            session.next_conflict()

    def test_choose_out_of_range(self):
        session = IpaSession(make_mini_tournament_spec())
        session.next_conflict()
        with pytest.raises(AnalysisError, match="out of range"):
            session.choose(99)

    def test_finish_with_pending_conflict(self):
        session = IpaSession(make_mini_tournament_spec())
        session.next_conflict()
        with pytest.raises(AnalysisError, match="unresolved"):
            session.finish()

    def test_original_spec_untouched(self):
        spec = make_mini_tournament_spec()
        before = dict(spec.operations)
        session = IpaSession(spec)
        session.next_conflict()
        session.choose(0)
        assert spec.operations == before
