"""Determinism and safety of the analysis performance layers.

The contract of ``run_ipa``'s ``jobs``/``cache`` knobs is that they are
*pure* accelerations: sequential, cache-warmed and parallel runs of the
same specification must produce identical results -- same repairs, same
witnesses, same compensations, same logical query counts.  And the
on-disk cache tier must never trust a corrupted, tampered or stale
entry: anything that fails validation is recomputed.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cache import (
    CACHE_SCHEMA,
    SolverCache,
    deserialize_model,
    serialize_model,
)
from repro.analysis.ipa import run_ipa
from repro.apps.ticket import ticket_spec
from repro.apps.tournament import tournament_spec
from repro.apps.tpcw import tpcw_spec
from repro.apps.twitter import twitter_spec
from repro.logic.ast import Atom, Const, NumPred, PredicateDecl, Sort
from repro.logic.grounding import Domain
from repro.solver.models import Model

ALL_APPS = [
    pytest.param(ticket_spec, id="ticket"),
    pytest.param(tpcw_spec, id="tpcw"),
    pytest.param(twitter_spec, id="twitter"),
    pytest.param(tournament_spec, id="tournament"),
]


@pytest.mark.parametrize("build", ALL_APPS)
def test_sequential_cached_parallel_agree(build, tmp_path):
    """Cold sequential, warm cached and ``jobs=4`` runs are identical."""
    cache_dir = tmp_path / "cache"
    sequential = run_ipa(build(), cache_dir=cache_dir)  # cold fill
    cached = run_ipa(build(), cache_dir=cache_dir)  # warm, sequential
    parallel = run_ipa(build(), jobs=4, cache_dir=cache_dir)

    reference = sequential.fingerprint()
    assert cached.fingerprint() == reference
    assert parallel.fingerprint() == reference
    # The logical query count is part of the determinism contract.
    assert cached.solver_queries == sequential.solver_queries
    assert parallel.solver_queries == sequential.solver_queries
    # A warm cache answers everything without running the solver.
    assert cached.stats.solver_solves == 0
    assert parallel.stats.solver_solves == 0
    # ... and the rendered artefacts agree too.
    assert cached.modified.describe() == sequential.modified.describe()
    assert parallel.modified.describe() == sequential.modified.describe()


def _cache_files(cache_dir: Path) -> list[Path]:
    return sorted(cache_dir.rglob("*.json"))


def test_corrupted_disk_entries_are_recomputed(tmp_path):
    cache_dir = tmp_path / "cache"
    reference = run_ipa(ticket_spec(), cache_dir=cache_dir)
    files = _cache_files(cache_dir)
    assert files, "cold run should have populated the disk tier"
    for path in files:
        path.write_text("{ not json", encoding="utf-8")

    rerun = run_ipa(ticket_spec(), cache_dir=cache_dir)
    assert rerun.fingerprint() == reference.fingerprint()
    assert rerun.stats.cache_rejected > 0
    assert rerun.stats.solver_solves > 0  # recomputed, not trusted


def test_tampered_payload_fails_checksum(tmp_path):
    cache_dir = tmp_path / "cache"
    reference = run_ipa(ticket_spec(), cache_dir=cache_dir)
    tampered = 0
    for path in _cache_files(cache_dir):
        document = json.loads(path.read_text(encoding="utf-8"))
        # Flip the verdict but keep the stale checksum: a lying entry.
        document["result"]["sat"] = not document["result"]["sat"]
        path.write_text(json.dumps(document), encoding="utf-8")
        tampered += 1
    assert tampered > 0

    rerun = run_ipa(ticket_spec(), cache_dir=cache_dir)
    assert rerun.fingerprint() == reference.fingerprint()
    assert rerun.stats.cache_rejected > 0


def test_stale_schema_entries_are_recomputed(tmp_path):
    cache_dir = tmp_path / "cache"
    reference = run_ipa(ticket_spec(), cache_dir=cache_dir)
    for path in _cache_files(cache_dir):
        document = json.loads(path.read_text(encoding="utf-8"))
        document["schema"] = CACHE_SCHEMA - 1
        path.write_text(json.dumps(document), encoding="utf-8")

    rerun = run_ipa(ticket_spec(), cache_dir=cache_dir)
    assert rerun.fingerprint() == reference.fingerprint()
    assert rerun.stats.cache_rejected > 0


def test_rejected_entries_are_dropped_from_disk(tmp_path):
    cache = SolverCache(tmp_path / "cache")
    cache.put("ab" * 32, True, model=None)
    (path,) = _cache_files(tmp_path / "cache")
    path.write_text("garbage", encoding="utf-8")

    fresh = SolverCache(tmp_path / "cache")  # no memory tier for the key
    assert fresh.get("ab" * 32) is None
    assert fresh.stats.rejected == 1
    assert not path.exists()


def test_disk_tier_shares_between_instances(tmp_path):
    writer = SolverCache(tmp_path / "cache")
    writer.put("cd" * 32, False)
    reader = SolverCache(tmp_path / "cache")
    entry = reader.get("cd" * 32)
    assert entry is not None and entry.sat is False
    assert reader.stats.disk_hits == 1


def test_need_model_rejects_model_less_sat_entries():
    cache = SolverCache()
    cache.put("ef" * 32, True, model=None)
    assert cache.get("ef" * 32) is not None
    assert cache.get("ef" * 32, need_model=True) is None
    # UNSAT entries never need a model.
    cache.put("01" * 32, False)
    assert cache.get("01" * 32, need_model=True) is not None


def test_unrecorded_lookups_leave_stats_alone():
    cache = SolverCache()
    cache.put("23" * 32, True, model=None)
    before = cache.stats.as_dict()
    cache.get("23" * 32, record=False)
    cache.get("ff" * 32, record=False)  # miss
    assert cache.stats.as_dict() == before


# -- model serialisation round-trip -----------------------------------------

_PLAYER = Sort("P")
_TOURN = Sort("T")
_ENROLLED = PredicateDecl("enrolled", (_PLAYER, _TOURN), numeric=False)
_BUDGET = PredicateDecl("budget", (_PLAYER,), numeric=True)
_PLAYERS = [Const(f"p{i}", _PLAYER) for i in range(3)]
_TOURNS = [Const(f"t{i}", _TOURN) for i in range(2)]


@st.composite
def models(draw):
    domain = Domain({_PLAYER: tuple(_PLAYERS), _TOURN: tuple(_TOURNS)})
    model = Model(domain=domain, params={"K": draw(st.integers(0, 4))})
    for player in _PLAYERS:
        for tourn in _TOURNS:
            if draw(st.booleans()):
                model.atoms[Atom(_ENROLLED, (player, tourn))] = draw(
                    st.booleans()
                )
        if draw(st.booleans()):
            model.numerics[NumPred(_BUDGET, (player,))] = draw(
                st.integers(0, 7)
            )
    return model


@given(models())
@settings(max_examples=50, deadline=None)
def test_model_serialization_round_trip(model):
    blob = serialize_model(model)
    json.dumps(blob)  # must be JSON-safe
    restored = deserialize_model(blob, model.domain, model.params)
    assert restored.atoms == model.atoms
    assert restored.numerics == model.numerics
    assert restored.params == model.params
