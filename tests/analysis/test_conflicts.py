"""Conflict detection tests: the paper's Figure 2 scenarios and more."""

import pytest

from repro.analysis.conflicts import ConflictChecker, opposing_effects
from repro.solver.models import evaluate
from repro.spec import SpecBuilder
from repro.spec.effects import BoolEffect, ConvergencePolicy

from tests.conftest import make_mini_tournament_spec


@pytest.fixture
def spec():
    return make_mini_tournament_spec()


@pytest.fixture
def checker(spec):
    return ConflictChecker(spec)


class TestFigure2a:
    """rem_tourn(t) || enroll(p, t) breaks referential integrity."""

    def test_conflict_detected(self, spec, checker):
        witness = checker.is_conflicting(
            spec.operation("rem_tourn"), spec.operation("enroll")
        )
        assert witness is not None

    def test_witness_states_match_figure(self, spec, checker):
        witness = checker.is_conflicting(
            spec.operation("rem_tourn"), spec.operation("enroll")
        )
        enrolled = spec.schema.pred("enrolled")
        tournament = spec.schema.pred("tournament")
        t_const = witness.binding.binding1[
            spec.operation("rem_tourn").params[0]
        ]
        p_const = witness.binding.binding2[
            spec.operation("enroll").params[0]
        ]
        from repro.logic.ast import Atom

        # Initial: tournament exists, preconditions of both ops hold.
        assert witness.initial.holds(Atom(tournament, (t_const,)))
        # After rem_tourn: gone.  After enroll: enrolled.
        assert not witness.after_op1.holds(Atom(tournament, (t_const,)))
        assert witness.after_op2.holds(Atom(enrolled, (p_const, t_const)))
        # Merged: enrolled but tournament removed -> invariant broken.
        assert witness.merged.holds(Atom(enrolled, (p_const, t_const)))
        assert not witness.merged.holds(Atom(tournament, (t_const,)))

    def test_violated_invariant_reported(self, spec, checker):
        witness = checker.is_conflicting(
            spec.operation("rem_tourn"), spec.operation("enroll")
        )
        assert len(witness.violated) == 1
        assert "enrolled" in witness.violated[0].describe()
        for invariant in witness.violated:
            assert not evaluate(invariant.formula, witness.merged)

    def test_describe_renders_states(self, spec, checker):
        witness = checker.is_conflicting(
            spec.operation("rem_tourn"), spec.operation("enroll")
        )
        text = witness.describe()
        assert "initial state" in text
        assert "merged state" in text
        assert "violates" in text


class TestFigure2b:
    """enroll + tournament(t)=true with Add-wins removes the conflict."""

    def test_repaired_pair_clean(self, spec, checker):
        enroll = spec.operation("enroll")
        repaired = enroll.with_extra_effects(
            [
                BoolEffect(
                    spec.schema.pred("tournament"),
                    (enroll.params[1],),
                    value=True,
                )
            ]
        )
        assert checker.is_conflicting(
            spec.operation("rem_tourn"), repaired
        ) is None

    def test_repair_needs_add_wins(self, spec, checker):
        """Under Rem-wins for tournament the same repair fails."""
        enroll = spec.operation("enroll")
        repaired = enroll.with_extra_effects(
            [
                BoolEffect(
                    spec.schema.pred("tournament"),
                    (enroll.params[1],),
                    value=True,
                )
            ]
        )
        rules = spec.rules.copy()
        rules.set("tournament", ConvergencePolicy.REM_WINS)
        witness = checker.is_conflicting(
            spec.operation("rem_tourn"), repaired, rules
        )
        assert witness is not None


class TestFigure2c:
    """rem_tourn + enrolled(*, t)=false with Rem-wins removes it too."""

    def test_wildcard_clear_repairs(self, spec, checker):
        from repro.logic.ast import Wildcard

        rem = spec.operation("rem_tourn")
        enrolled = spec.schema.pred("enrolled")
        player_sort = spec.schema.sorts["Player"]
        repaired = rem.with_extra_effects(
            [
                BoolEffect(
                    enrolled,
                    (Wildcard(player_sort), rem.params[0]),
                    value=False,
                )
            ]
        )
        rules = spec.rules.copy()
        rules.set("enrolled", ConvergencePolicy.REM_WINS)
        assert checker.is_conflicting(
            repaired, spec.operation("enroll"), rules
        ) is None

    def test_wildcard_clear_needs_rem_wins(self, spec, checker):
        from repro.logic.ast import Wildcard

        rem = spec.operation("rem_tourn")
        enrolled = spec.schema.pred("enrolled")
        player_sort = spec.schema.sorts["Player"]
        repaired = rem.with_extra_effects(
            [
                BoolEffect(
                    enrolled,
                    (Wildcard(player_sort), rem.params[0]),
                    value=False,
                )
            ]
        )
        # Under the default Add-wins rules the concurrent enroll wins
        # and the conflict stays.
        assert checker.is_conflicting(
            repaired, spec.operation("enroll")
        ) is not None


class TestNonConflictingPairs:
    def test_pure_adds_never_conflict(self, spec, checker):
        assert checker.is_conflicting(
            spec.operation("add_player"), spec.operation("add_tourn")
        ) is None

    def test_enroll_with_itself(self, spec, checker):
        assert checker.is_conflicting(
            spec.operation("enroll"), spec.operation("enroll")
        ) is None

    def test_find_conflicts_exactly_one_pair(self, spec, checker):
        conflicts = checker.find_conflicts()
        pairs = {
            frozenset((w.op1.name, w.op2.name)) for w in conflicts
        }
        assert pairs == {frozenset(("rem_tourn", "enroll"))}

    def test_find_first_respects_skip(self, spec, checker):
        witness = checker.find_first()
        assert witness is not None
        skipped = checker.find_first(
            skip={(witness.op1.name, witness.op2.name)}
        )
        assert skipped is None


class TestCapacitySelfConflict:
    def test_enroll_parallel_enroll_violates_capacity(self):
        b = SpecBuilder("capacity")
        b.predicate("enrolled", "Player", "Tournament")
        b.parameter("Capacity", 1)
        b.invariant(
            "forall(Tournament: t) :- #enrolled(*, t) <= Capacity"
        )
        b.operation(
            "enroll", "Player: p, Tournament: t", true=["enrolled(p, t)"]
        )
        spec = b.build()
        checker = ConflictChecker(spec)
        witness = checker.is_conflicting(
            spec.operation("enroll"), spec.operation("enroll")
        )
        assert witness is not None
        # The violated invariant is the capacity bound.
        assert "Capacity" in witness.violated[0].describe()


class TestNumericConflict:
    def test_concurrent_decrements_break_lower_bound(self):
        b = SpecBuilder("stock")
        b.predicate("stock", "Item", numeric=True)
        b.invariant("forall(Item: i) :- stock(i) >= 0")
        b.operation("buy", "Item: i", decr=["stock(i)"])
        b.operation("restock", "Item: i", incr=["stock(i) 3"])
        spec = b.build()
        checker = ConflictChecker(spec)
        witness = checker.is_conflicting(
            spec.operation("buy"), spec.operation("buy")
        )
        assert witness is not None

    def test_increments_never_conflict(self):
        b = SpecBuilder("stock2")
        b.predicate("stock", "Item", numeric=True)
        b.invariant("forall(Item: i) :- stock(i) >= 0")
        b.operation("restock", "Item: i", incr=["stock(i) 3"])
        spec = b.build()
        checker = ConflictChecker(spec)
        assert checker.is_conflicting(
            spec.operation("restock"), spec.operation("restock")
        ) is None


class TestOpposingEffects:
    def test_opposing_pair(self, spec):
        assert opposing_effects(
            spec.operation("add_tourn"), spec.operation("rem_tourn")
        )

    def test_non_opposing_pair(self, spec):
        assert not opposing_effects(
            spec.operation("enroll"), spec.operation("rem_tourn")
        )


class TestSideConditions:
    def test_original_ops_executable(self, spec, checker):
        for operation in spec.operations.values():
            assert checker.is_executable(operation)

    def test_contradictory_op_not_executable(self, spec, checker):
        # rem_tourn that also enrols someone in t: the post state can
        # never satisfy referential integrity.
        rem = spec.operation("rem_tourn")
        player_sort = spec.schema.sorts["Player"]
        from repro.logic.ast import Wildcard

        bad = spec.operation("enroll").with_extra_effects(
            [
                BoolEffect(
                    spec.schema.pred("tournament"),
                    (spec.operation("enroll").params[1],),
                    value=False,
                )
            ]
        )
        assert not checker.is_executable(bad)

    def test_preserving_extra_effect(self, spec, checker):
        """tournament(t)=true added to enroll is a no-op when alone."""
        enroll = spec.operation("enroll")
        repaired = enroll.with_extra_effects(
            [
                BoolEffect(
                    spec.schema.pred("tournament"),
                    (enroll.params[1],),
                    value=True,
                )
            ]
        )
        assert checker.preserves_solo_semantics(enroll, repaired)

    def test_non_preserving_extra_effect(self, spec, checker):
        """player(p)=false added to enroll changes solo behaviour."""
        enroll = spec.operation("enroll")
        modified = enroll.with_extra_effects(
            [
                BoolEffect(
                    spec.schema.pred("player"),
                    (enroll.params[0],),
                    value=False,
                )
            ]
        )
        assert not checker.preserves_solo_semantics(enroll, modified)

    def test_wildcard_clear_on_rem_tourn_preserves(self, spec, checker):
        """Figure 2c's repair is a no-op in conflict-free executions:
        rem_tourn only runs in states with no enrolments in t."""
        from repro.logic.ast import Wildcard

        rem = spec.operation("rem_tourn")
        player_sort = spec.schema.sorts["Player"]
        repaired = rem.with_extra_effects(
            [
                BoolEffect(
                    spec.schema.pred("enrolled"),
                    (Wildcard(player_sort), rem.params[0]),
                    value=False,
                )
            ]
        )
        assert checker.preserves_solo_semantics(rem, repaired)
