"""Repair-search tests (Algorithm 1's ``repairConflicts``)."""

import pytest

from repro.analysis.conflicts import ConflictChecker
from repro.analysis.repair import (
    default_policy,
    first_resolution,
    prefer_operation,
    repair_conflict,
)
from repro.logic.ast import Wildcard
from repro.spec.effects import BoolEffect, ConvergencePolicy

from tests.conftest import make_mini_tournament_spec


@pytest.fixture
def setup():
    spec = make_mini_tournament_spec()
    checker = ConflictChecker(spec)
    witness = checker.is_conflicting(
        spec.operation("rem_tourn"), spec.operation("enroll")
    )
    assert witness is not None
    return spec, checker, witness


class TestRepairSearch:
    def test_finds_both_paper_resolutions(self, setup):
        spec, checker, witness = setup
        solutions = repair_conflict(spec, checker, witness)
        assert len(solutions) == 2
        modified = {
            (r.modified_op.original_name, r.clears_with_wildcard)
            for r in solutions
        }
        # Figure 2b: enroll restores the tournament (no wildcard);
        # Figure 2c: rem_tourn clears enrolments (wildcard).
        assert modified == {("enroll", False), ("rem_tourn", True)}

    def test_figure2b_solution_shape(self, setup):
        spec, checker, witness = setup
        solutions = repair_conflict(spec, checker, witness)
        enroll_fix = next(
            r for r in solutions
            if r.modified_op.original_name == "enroll"
        )
        tournament = spec.schema.pred("tournament")
        enroll = spec.operation("enroll")
        assert enroll_fix.candidate.extra_effects == (
            BoolEffect(tournament, (enroll.params[1],), value=True),
        )
        # Add-wins is the default rule, so no change is required.
        assert enroll_fix.rule_changes == ()

    def test_figure2c_solution_shape(self, setup):
        spec, checker, witness = setup
        solutions = repair_conflict(spec, checker, witness)
        rem_fix = next(
            r for r in solutions
            if r.modified_op.original_name == "rem_tourn"
        )
        (effect,) = rem_fix.candidate.extra_effects
        assert effect.has_wildcard and effect.value is False
        assert effect.pred.name == "enrolled"
        assert rem_fix.rule_changes == (
            ("enrolled", ConvergencePolicy.REM_WINS),
        )

    def test_repaired_pairs_verified_clean(self, setup):
        spec, checker, witness = setup
        for resolution in repair_conflict(spec, checker, witness):
            rules = spec.rules.copy()
            for name, policy in resolution.rule_changes:
                rules.set(name, policy)
            assert checker.is_conflicting(
                resolution.new_op1, resolution.new_op2, rules
            ) is None

    def test_minimality_no_superset_solutions(self, setup):
        spec, checker, witness = setup
        solutions = repair_conflict(spec, checker, witness, max_effects=2)
        for a in solutions:
            for b in solutions:
                if a is not b:
                    assert not a.candidate.is_superset_of(b.candidate)

    def test_stop_after_limits_solutions(self, setup):
        spec, checker, witness = setup
        solutions = repair_conflict(
            spec, checker, witness, stop_after=1
        )
        assert len(solutions) == 1

    def test_without_semantics_preservation_more_solutions(self, setup):
        spec, checker, witness = setup
        strict = repair_conflict(spec, checker, witness)
        loose = repair_conflict(
            spec, checker, witness, require_semantics_preserving=False
        )
        assert len(loose) >= len(strict)


class TestPolicies:
    def test_first_resolution(self, setup):
        spec, checker, witness = setup
        solutions = repair_conflict(spec, checker, witness)
        assert first_resolution(witness, solutions) is solutions[0]
        assert first_resolution(witness, []) is None

    def test_default_policy_avoids_wildcards(self, setup):
        spec, checker, witness = setup
        solutions = repair_conflict(spec, checker, witness)
        chosen = default_policy(witness, solutions)
        assert not chosen.clears_with_wildcard

    def test_prefer_operation(self, setup):
        spec, checker, witness = setup
        solutions = repair_conflict(spec, checker, witness)
        chosen = prefer_operation("rem_tourn")(witness, solutions)
        assert chosen.modified_op.original_name == "rem_tourn"

    def test_prefer_operation_fallback(self, setup):
        spec, checker, witness = setup
        solutions = repair_conflict(spec, checker, witness)
        chosen = prefer_operation("ghost")(witness, solutions)
        assert chosen is not None  # falls back to the default policy
