"""Candidate-generation tests (Algorithm 1's ``generate``)."""

from repro.analysis.generation import (
    CandidateRepair,
    generate_candidates,
    involved_invariants,
    predicate_pool,
)
from repro.logic.ast import Wildcard
from repro.spec.effects import BoolEffect, ConvergencePolicy

from tests.conftest import make_mini_tournament_spec


def pair(spec):
    return spec.operation("rem_tourn"), spec.operation("enroll")


class TestInvolvedInvariants:
    def test_selects_touched_clauses(self):
        spec = make_mini_tournament_spec()
        op1, op2 = pair(spec)
        invariants = involved_invariants(spec, op1, op2)
        assert len(invariants) == 1
        assert "enrolled" in invariants[0].describe()

    def test_untouched_pair_selects_nothing(self):
        spec = make_mini_tournament_spec()
        b_op = spec.operation("add_player")
        # add_player touches "player", which does appear in the clause.
        invariants = involved_invariants(spec, b_op, b_op)
        assert len(invariants) == 1


class TestPredicatePool:
    def test_pool_is_boolean_invariant_predicates(self):
        spec = make_mini_tournament_spec()
        pool = predicate_pool(spec, *pair(spec))
        assert {p.name for p in pool} == {
            "enrolled", "player", "tournament",
        }


class TestGenerate:
    def test_ordered_by_size(self):
        spec = make_mini_tournament_spec()
        candidates = generate_candidates(spec, *pair(spec))
        sizes = [c.size for c in candidates]
        assert sizes == sorted(sizes)
        assert sizes[0] == 1

    def test_paper_candidates_present(self):
        """Both Figure 2 repairs appear in the candidate list."""
        spec = make_mini_tournament_spec()
        rem, enroll = pair(spec)
        candidates = generate_candidates(spec, rem, enroll)
        tournament = spec.schema.pred("tournament")
        enrolled = spec.schema.pred("enrolled")
        player_sort = spec.schema.sorts["Player"]
        fig2b = BoolEffect(tournament, (enroll.params[1],), value=True)
        fig2c = BoolEffect(
            enrolled, (Wildcard(player_sort), rem.params[0]), value=False
        )
        singles = [
            c.extra_effects[0] for c in candidates if c.size == 1
        ]
        assert fig2b in singles
        assert fig2c in singles

    def test_no_wildcard_true_effects(self):
        spec = make_mini_tournament_spec()
        for candidate in generate_candidates(spec, *pair(spec)):
            for effect in candidate.extra_effects:
                if effect.has_wildcard:
                    assert effect.value is False

    def test_no_self_opposing_candidates(self):
        """rem_tourn never gets tournament(t)=true added to it."""
        spec = make_mini_tournament_spec()
        rem, enroll = pair(spec)
        tournament = spec.schema.pred("tournament")
        bad = BoolEffect(tournament, (rem.params[0],), value=True)
        for candidate in generate_candidates(spec, rem, enroll):
            if candidate.side == 1:
                assert bad not in candidate.extra_effects

    def test_rule_requirements_attached(self):
        spec = make_mini_tournament_spec()  # default rules: add-wins
        rem, enroll = pair(spec)
        for candidate in generate_candidates(spec, rem, enroll):
            for effect in candidate.extra_effects:
                if effect.value is False:
                    assert (
                        effect.pred.name,
                        ConvergencePolicy.REM_WINS,
                    ) in candidate.rule_requirements

    def test_rule_changes_disallowed_filters(self):
        spec = make_mini_tournament_spec()
        rem, enroll = pair(spec)
        candidates = generate_candidates(
            spec, rem, enroll, allow_rule_changes=False
        )
        # With add-wins everywhere, only value=True effects remain.
        for candidate in candidates:
            for effect in candidate.extra_effects:
                assert effect.value is True
            assert candidate.rule_requirements == ()

    def test_max_effects_respected(self):
        spec = make_mini_tournament_spec()
        for candidate in generate_candidates(
            spec, *pair(spec), max_effects=1
        ):
            assert candidate.size == 1


class TestMinimality:
    def test_is_superset_of(self):
        spec = make_mini_tournament_spec()
        rem, enroll = pair(spec)
        tournament = spec.schema.pred("tournament")
        player = spec.schema.pred("player")
        small = CandidateRepair(
            side=2,
            extra_effects=(
                BoolEffect(tournament, (enroll.params[1],), value=True),
            ),
            rule_requirements=(),
        )
        big = CandidateRepair(
            side=2,
            extra_effects=(
                BoolEffect(tournament, (enroll.params[1],), value=True),
                BoolEffect(player, (enroll.params[0],), value=True),
            ),
            rule_requirements=(),
        )
        assert big.is_superset_of(small)
        assert not small.is_superset_of(big)

    def test_different_sides_never_supersets(self):
        spec = make_mini_tournament_spec()
        rem, enroll = pair(spec)
        tournament = spec.schema.pred("tournament")
        effect = BoolEffect(tournament, (enroll.params[1],), value=True)
        c1 = CandidateRepair(1, (effect,), ())
        c2 = CandidateRepair(2, (effect,), ())
        assert not c1.is_superset_of(c2)
