"""Main-loop tests (Algorithm 1 end to end)."""

import pytest

from repro.analysis.conflicts import ConflictChecker
from repro.analysis.ipa import IpaTool, run_ipa
from repro.errors import UnsolvableConflictError
from repro.spec import SpecBuilder

from tests.conftest import make_mini_tournament_spec


class TestMiniTournament:
    def test_loop_resolves_all_conflicts(self):
        spec = make_mini_tournament_spec()
        result = run_ipa(spec)
        assert result.is_invariant_preserving
        assert not result.flagged
        assert len(result.applied) == 1
        # The modified spec has no conflicts left.
        checker = ConflictChecker(result.modified)
        assert checker.find_conflicts() == []

    def test_original_spec_untouched(self):
        spec = make_mini_tournament_spec()
        before = {
            name: op.effects for name, op in spec.operations.items()
        }
        run_ipa(spec)
        after = {name: op.effects for name, op in spec.operations.items()}
        assert before == after

    def test_default_policy_picks_figure2b(self):
        spec = make_mini_tournament_spec()
        result = run_ipa(spec)
        applied = result.applied[0]
        assert applied.resolution.modified_op.original_name == "enroll"
        assert applied.alternatives == 2

    def test_i_confluent_spec_is_noop(self):
        b = SpecBuilder("adds-only")
        b.predicate("player", "Player")
        b.invariant("forall(Player: p) :- player(p) => player(p)")
        b.operation("add_player", "Player: p", true=["player(p)"])
        result = run_ipa(b.build())
        assert not result.applied
        assert not result.flagged
        assert "already I-Confluent" in result.describe()


class TestCompensationPath:
    def capacity_spec(self):
        b = SpecBuilder("capacity")
        b.predicate("enrolled", "Player", "Tournament")
        b.parameter("Capacity", 1)
        b.invariant(
            "forall(Tournament: t) :- #enrolled(*, t) <= Capacity"
        )
        b.operation(
            "enroll", "Player: p, Tournament: t", true=["enrolled(p, t)"]
        )
        return b.build()

    def test_capacity_flagged_with_compensation(self):
        result = run_ipa(self.capacity_spec())
        assert result.is_invariant_preserving
        assert len(result.flagged) == 1
        (compensation,) = result.compensations
        assert compensation.kind == "trim-collection"
        assert compensation.predicate == "enrolled"
        assert compensation.trigger_ops == ("enroll",)

    def test_compensations_deduplicated(self):
        spec = self.capacity_spec()
        b = spec  # add a second offending op to create two flagged pairs
        from repro.spec.operations import Operation

        enroll = spec.operation("enroll")
        spec.add_operation(
            Operation(
                "enroll_vip",
                enroll.params,
                enroll.effects,
            )
        )
        result = run_ipa(spec)
        kinds = [(c.kind, c.predicate) for c in result.compensations]
        assert kinds == [("trim-collection", "enrolled")]
        (compensation,) = result.compensations
        assert set(compensation.trigger_ops) == {"enroll", "enroll_vip"}


class TestStrictMode:
    def test_strict_raises_on_uncoverable_conflict(self):
        # A disjunction-free mutual exclusion with LWW rules cannot be
        # repaired (no winner) nor compensated (not numeric).
        b = SpecBuilder("mutex")
        b.predicate("active", "Tournament")
        b.predicate("finished", "Tournament")
        b.invariant(
            "forall(Tournament: t) :- not (active(t) and finished(t))"
        )
        b.operation("begin", "Tournament: t", true=["active(t)"])
        b.operation("finish", "Tournament: t", true=["finished(t)"])
        spec = b.build(default_rule="lww")
        with pytest.raises(UnsolvableConflictError):
            run_ipa(spec, allow_rule_changes=False, strict=True)

    def test_non_strict_flags_instead(self):
        b = SpecBuilder("mutex2")
        b.predicate("active", "Tournament")
        b.predicate("finished", "Tournament")
        b.invariant(
            "forall(Tournament: t) :- not (active(t) and finished(t))"
        )
        b.operation("begin", "Tournament: t", true=["active(t)"])
        b.operation("finish", "Tournament: t", true=["finished(t)"])
        spec = b.build(default_rule="lww")
        result = run_ipa(spec, allow_rule_changes=False)
        assert not result.is_invariant_preserving
        assert any(f.needs_coordination for f in result.flagged)
        assert "coordination" in result.describe()


class TestRuleChangesRepairMutex:
    def test_mutex_repaired_with_rule_change(self):
        """With rule changes allowed, begin/finish is repairable: one
        side's status predicate becomes rem-wins and the other clears
        it (the Figure 3 ensureBegin/ensureEnd pattern)."""
        b = SpecBuilder("mutex3")
        b.predicate("active", "Tournament")
        b.predicate("finished", "Tournament")
        b.invariant(
            "forall(Tournament: t) :- not (active(t) and finished(t))"
        )
        b.operation("begin", "Tournament: t", true=["active(t)"])
        b.operation(
            "finish", "Tournament: t",
            true=["finished(t)"], false=["active(t)"],
        )
        result = run_ipa(b.build())
        assert result.is_invariant_preserving
        assert not result.flagged
        assert result.applied


class TestIpaTool:
    def test_tool_lazy_and_cached(self):
        tool = IpaTool(make_mini_tournament_spec())
        first = tool.result
        assert tool.result is first
        assert tool.modified_spec is first.modified

    def test_tool_report_contains_patch(self):
        tool = IpaTool(make_mini_tournament_spec())
        report = tool.report()
        assert "patch:" in report
        assert "tournament(t) = true" in report
