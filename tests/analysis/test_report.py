"""Report rendering tests."""

from repro.analysis.conflicts import ConflictChecker
from repro.analysis.ipa import run_ipa
from repro.analysis.repair import repair_conflict
from repro.analysis.report import (
    render_patch,
    render_resolutions,
    render_result,
    render_witness,
)

from tests.conftest import make_mini_tournament_spec


class TestRendering:
    def test_render_witness(self):
        spec = make_mini_tournament_spec()
        checker = ConflictChecker(spec)
        witness = checker.find_first()
        text = render_witness(witness)
        assert "conflict:" in text

    def test_render_resolutions(self):
        spec = make_mini_tournament_spec()
        checker = ConflictChecker(spec)
        witness = checker.find_first()
        solutions = repair_conflict(spec, checker, witness)
        text = render_resolutions(solutions)
        assert "[1]" in text and "[2]" in text

    def test_render_resolutions_empty(self):
        assert "no resolutions" in render_resolutions([])

    def test_render_patch_shows_added_effects_and_rules(self):
        spec = make_mini_tournament_spec()
        result = run_ipa(spec)
        patch = render_patch(spec, result.modified)
        assert "operation enroll:" in patch
        assert "+ tournament(t) = true" in patch

    def test_render_patch_no_changes(self):
        spec = make_mini_tournament_spec()
        assert render_patch(spec, spec.copy()) == "no changes required"

    def test_render_result_full(self):
        spec = make_mini_tournament_spec()
        result = run_ipa(spec)
        text = render_result(result)
        assert "conflicts repaired:" in text
        assert "patch:" in text
