"""Compensation synthesis tests (§3.4)."""

from repro.analysis.compensation import (
    compensation_for_invariant,
    generate_compensations,
)
from repro.logic.parser import parse_invariant
from repro.spec import SpecBuilder
from repro.spec.invariants import Invariant


def make_invariant(builder, text):
    return builder.invariant(text)


def schema_builder():
    b = SpecBuilder("comp")
    b.predicate("enrolled", "Player", "Tournament")
    b.predicate("stock", "Item", numeric=True)
    b.parameter("Capacity", 5)
    return b


class TestShapes:
    def test_cardinality_upper_bound_trims(self):
        b = schema_builder()
        inv = make_invariant(
            b, "forall(Tournament: t) :- #enrolled(*, t) <= Capacity"
        )
        comp = compensation_for_invariant(inv, ("enroll",))
        assert comp is not None
        assert comp.kind == "trim-collection"
        assert comp.predicate == "enrolled"
        assert comp.bound_param == "Capacity"
        assert comp.bound_value is None

    def test_numeric_lower_bound_replenishes(self):
        b = schema_builder()
        inv = make_invariant(b, "forall(Item: i) :- stock(i) >= 0")
        comp = compensation_for_invariant(inv, ("buy",))
        assert comp.kind == "replenish-counter"
        assert comp.bound_value == 0

    def test_numeric_upper_bound_cancels(self):
        b = schema_builder()
        inv = make_invariant(b, "forall(Item: i) :- stock(i) <= 10")
        comp = compensation_for_invariant(inv, ("sell",))
        assert comp.kind == "cancel-excess"
        assert comp.bound_value == 10

    def test_flipped_comparison_normalised(self):
        b = schema_builder()
        inv = make_invariant(
            b, "forall(Tournament: t) :- Capacity >= #enrolled(*, t)"
        )
        comp = compensation_for_invariant(inv, ("enroll",))
        assert comp is not None
        assert comp.kind == "trim-collection"

    def test_non_numeric_invariant_unsupported(self):
        b = schema_builder()
        b.predicate("player", "Player")
        inv = make_invariant(
            b,
            "forall(Player: p, Tournament: t) :- "
            "enrolled(p, t) => player(p)",
        )
        assert compensation_for_invariant(inv, ("enroll",)) is None

    def test_describe(self):
        b = schema_builder()
        inv = make_invariant(
            b, "forall(Tournament: t) :- #enrolled(*, t) <= Capacity"
        )
        comp = compensation_for_invariant(inv, ("enroll", "do_match"))
        text = comp.describe()
        assert "trim-collection" in text
        assert "enroll" in text and "do_match" in text


class TestFromWitness:
    def test_generated_for_flagged_conflict(self):
        b = SpecBuilder("cap")
        b.predicate("enrolled", "Player", "Tournament")
        b.parameter("Capacity", 1)
        b.invariant(
            "forall(Tournament: t) :- #enrolled(*, t) <= Capacity"
        )
        b.operation(
            "enroll", "Player: p, Tournament: t", true=["enrolled(p, t)"]
        )
        spec = b.build()
        from repro.analysis.conflicts import ConflictChecker

        checker = ConflictChecker(spec)
        witness = checker.is_conflicting(
            spec.operation("enroll"), spec.operation("enroll")
        )
        comps = generate_compensations(spec, witness)
        assert len(comps) == 1
        assert comps[0].trigger_ops == ("enroll",)
