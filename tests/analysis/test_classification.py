"""Invariant classification tests (Table 1 taxonomy)."""

from repro.analysis.classification import (
    InvariantClass,
    classify_invariant,
    classify_spec,
    table1_rows,
)
from repro.apps import ticket_spec, tournament_spec, tpcw_spec, twitter_spec
from repro.spec import SpecBuilder


def classify_text(text, build=None):
    b = SpecBuilder("cls")
    b.predicate("player", "Player")
    b.predicate("tournament", "Tournament")
    b.predicate("enrolled", "Player", "Tournament")
    b.predicate("active", "Tournament")
    b.predicate("finished", "Tournament")
    b.predicate("stock", "Tournament", numeric=True)
    b.parameter("Capacity", 5)
    if build:
        build(b)
    return classify_invariant(b.invariant(text))


class TestSyntacticClassification:
    def test_referential_integrity(self):
        assert classify_text(
            "forall(Player: p, Tournament: t) :- "
            "enrolled(p, t) => player(p) and tournament(t)"
        ) is InvariantClass.REFERENTIAL_INTEGRITY

    def test_disjunction_in_consequent(self):
        assert classify_text(
            "forall(Player: p, Tournament: t) :- "
            "enrolled(p, t) => active(t) or finished(t)"
        ) is InvariantClass.DISJUNCTION

    def test_mutual_exclusion_is_disjunction(self):
        assert classify_text(
            "forall(Tournament: t) :- not (active(t) and finished(t))"
        ) is InvariantClass.DISJUNCTION

    def test_aggregation_constraint(self):
        assert classify_text(
            "forall(Tournament: t) :- #enrolled(*, t) <= Capacity"
        ) is InvariantClass.AGGREGATION_CONSTRAINT

    def test_numeric_invariant(self):
        assert classify_text(
            "forall(Tournament: t) :- stock(t) >= 0"
        ) is InvariantClass.NUMERIC

    def test_membership_is_aggregation_inclusion(self):
        assert classify_text(
            "forall(Tournament: t) :- tournament(t)"
        ) is InvariantClass.AGGREGATION_INCLUSION

    def test_explicit_category_overrides(self):
        b = SpecBuilder("ids")
        inv = b.invariant("true", category="unique-id")
        assert classify_invariant(inv) is InvariantClass.UNIQUE_ID


class TestVerdicts:
    def test_i_confluent_column(self):
        confluent = {
            cls for cls in InvariantClass if cls.i_confluent
        }
        assert confluent == {
            InvariantClass.UNIQUE_ID,
            InvariantClass.AGGREGATION_INCLUSION,
        }

    def test_ipa_column(self):
        assert InvariantClass.SEQUENTIAL_ID.ipa_treatment == "no"
        assert InvariantClass.NUMERIC.ipa_treatment == "compensation"
        assert (
            InvariantClass.AGGREGATION_CONSTRAINT.ipa_treatment
            == "compensation"
        )
        for cls in (
            InvariantClass.UNIQUE_ID,
            InvariantClass.AGGREGATION_INCLUSION,
            InvariantClass.REFERENTIAL_INTEGRITY,
            InvariantClass.DISJUNCTION,
        ):
            assert cls.ipa_treatment == "yes"


class TestApplicationSpecs:
    def test_tournament_classes(self):
        grouped = classify_spec(tournament_spec())
        assert InvariantClass.REFERENTIAL_INTEGRITY in grouped
        assert InvariantClass.AGGREGATION_CONSTRAINT in grouped
        assert InvariantClass.DISJUNCTION in grouped
        assert InvariantClass.UNIQUE_ID in grouped
        assert InvariantClass.AGGREGATION_INCLUSION in grouped

    def test_tpcw_classes(self):
        grouped = classify_spec(tpcw_spec())
        assert InvariantClass.NUMERIC in grouped
        assert InvariantClass.SEQUENTIAL_ID in grouped
        assert InvariantClass.REFERENTIAL_INTEGRITY in grouped

    def test_table1_rows_structure(self):
        rows = table1_rows(
            {"Tour": tournament_spec(), "Twitter": twitter_spec()}
        )
        assert len(rows) == 7
        assert rows[0]["Inv. Type"] == "Sequential id."
        for row in rows:
            assert set(row) == {
                "Inv. Type", "I-Conf.", "IPA", "Tour", "Twitter",
            }

    def test_ticket_has_aggregation_constraint(self):
        grouped = classify_spec(ticket_spec())
        assert InvariantClass.AGGREGATION_CONSTRAINT in grouped
