"""Parameter-aliasing enumeration tests."""

from repro.analysis.bindings import (
    enumerate_pair_bindings,
    enumerate_single_bindings,
    set_partitions,
)
from repro.logic.ast import PredicateDecl, Sort, Var
from repro.spec.effects import BoolEffect
from repro.spec.operations import Operation

P = Sort("Player")
T = Sort("Tournament")
player = PredicateDecl("player", (P,))
tournament = PredicateDecl("tournament", (T,))
p = Var("p", P)
q = Var("q", P)
t = Var("t", T)


def op(name, params, effects=()):
    return Operation(name, params, tuple(effects))


class TestSetPartitions:
    def test_bell_numbers(self):
        # Bell numbers: B(0)=1, B(1)=1, B(2)=2, B(3)=5, B(4)=15.
        for n, bell in [(0, 1), (1, 1), (2, 2), (3, 5), (4, 15)]:
            assert len(list(set_partitions(list(range(n))))) == bell

    def test_partitions_cover_all_items(self):
        for partition in set_partitions([1, 2, 3]):
            flattened = sorted(x for block in partition for x in block)
            assert flattened == [1, 2, 3]


class TestPairBindings:
    def test_shared_sort_aliasing_patterns(self):
        enroll = op("enroll", (p, t))
        rem = op("rem_tourn", (t,))
        bindings = list(enumerate_pair_bindings(enroll, rem, [P, T]))
        # One Player param (1 partition) x two Tournament params
        # (2 partitions: aliased / distinct).
        assert len(bindings) == 2
        aliased = [
            b for b in bindings
            if b.binding1[t] == b.binding2[t]
        ]
        assert len(aliased) == 1

    def test_self_pair_keeps_sides_distinct(self):
        enroll = op("enroll", (p, t))
        bindings = list(enumerate_pair_bindings(enroll, enroll, [P, T]))
        # Player: p vs p' -> 2 partitions; Tournament: t vs t' -> 2.
        assert len(bindings) == 4
        for binding in bindings:
            assert p in binding.binding1 and p in binding.binding2
            assert t in binding.binding1 and t in binding.binding2

    def test_domain_contains_extra_constants(self):
        enroll = op("enroll", (p, t))
        rem = op("rem_tourn", (t,))
        for binding in enumerate_pair_bindings(enroll, rem, [P, T], extra=2):
            used_players = {binding.binding1[p]}
            assert len(binding.domain.of(P)) == len(used_players) + 2

    def test_sorts_without_params_still_in_domain(self):
        add = op("add_player", (p,))
        bindings = list(enumerate_pair_bindings(add, add, [P, T], extra=1))
        for binding in bindings:
            assert len(binding.domain.of(T)) == 1

    def test_three_params_same_sort(self):
        match = op("do_match", (p, q, t))
        add = op("add_player", (p,))
        bindings = list(enumerate_pair_bindings(match, add, [P, T]))
        # Player params: p, q, p' -> B(3)=5; Tournament: t -> 1.
        assert len(bindings) == 5


class TestSingleBindings:
    def test_single_param(self):
        rem = op("rem_tourn", (t,))
        bindings = list(enumerate_single_bindings(rem, [P, T]))
        assert len(bindings) == 1
        assert t in bindings[0].binding

    def test_two_params_same_sort(self):
        match = op("do_match", (p, q, t))
        bindings = list(enumerate_single_bindings(match, [P, T]))
        # p/q aliased or not: B(2) x B(1) = 2.
        assert len(bindings) == 2

    def test_binding_describe(self):
        enroll = op("enroll", (p, t))
        rem = op("rem_tourn", (t,))
        binding = next(iter(enumerate_pair_bindings(enroll, rem, [P, T])))
        text = binding.describe()
        assert "p=" in text and "t=" in text
