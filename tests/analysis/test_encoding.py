"""State-transition encoding tests."""

import pytest

from repro.errors import AnalysisError
from repro.analysis.encoding import (
    GroundEffects,
    family,
    merged_state_constraints,
    rename_formula,
    single_state_constraints,
)
from repro.logic.ast import (
    Atom,
    Card,
    Cmp,
    Const,
    ForAll,
    IntConst,
    NumPred,
    PredicateDecl,
    Sort,
    Var,
    Wildcard,
)
from repro.logic.grounding import Domain
from repro.solver.smt import BoundedModelFinder
from repro.spec.effects import BoolEffect, ConvergenceRules, NumEffect
from repro.spec.effects import ConvergencePolicy

P = Sort("Player")
T = Sort("Tournament")
tournament = PredicateDecl("tournament", (T,))
enrolled = PredicateDecl("enrolled", (P, T))
stock = PredicateDecl("stock", (T,), numeric=True)
PREDS = [tournament, enrolled, stock]
DOMAIN = Domain.of_sizes({P: 2, T: 1})
p0, p1 = DOMAIN.of(P)
(t0,) = DOMAIN.of(T)


class TestFamilyRenaming:
    def test_family_is_deterministic(self):
        assert family(tournament, "m") == family(tournament, "m")
        assert family(tournament, "m").name == "tournament@m"

    def test_empty_tag_is_identity(self):
        assert family(tournament, "") is tournament

    def test_rename_formula(self):
        t = Var("t", T)
        formula = ForAll((t,), Atom(tournament, (t,)))
        renamed = rename_formula(formula, "1")
        assert renamed.body.pred.name == "tournament@1"

    def test_rename_numeric(self):
        formula = Cmp(">=", NumPred(stock, (t0,)), IntConst(0))
        renamed = rename_formula(formula, "2")
        assert renamed.lhs.pred.name == "stock@2"

    def test_rename_card(self):
        formula = Cmp(
            "<=", Card(enrolled, (Wildcard(P), t0)), IntConst(1)
        )
        renamed = rename_formula(formula, "m")
        assert renamed.lhs.pred.name == "enrolled@m"


class TestGroundEffects:
    def test_specific_assignment(self):
        effects = GroundEffects.from_effects(
            [BoolEffect(enrolled, (p0, t0), value=True)], DOMAIN
        )
        assert effects.bool_assigns == {Atom(enrolled, (p0, t0)): True}

    def test_wildcard_expansion(self):
        effects = GroundEffects.from_effects(
            [BoolEffect(enrolled, (Wildcard(P), t0), value=False)], DOMAIN
        )
        assert effects.bool_assigns == {
            Atom(enrolled, (p0, t0)): False,
            Atom(enrolled, (p1, t0)): False,
        }

    def test_specific_overrides_wildcard(self):
        effects = GroundEffects.from_effects(
            [
                BoolEffect(enrolled, (Wildcard(P), t0), value=False),
                BoolEffect(enrolled, (p0, t0), value=True),
            ],
            DOMAIN,
        )
        assert effects.bool_assigns[Atom(enrolled, (p0, t0))] is True
        assert effects.bool_assigns[Atom(enrolled, (p1, t0))] is False

    def test_contradictory_specific_assignments_rejected(self):
        with pytest.raises(AnalysisError):
            GroundEffects.from_effects(
                [
                    BoolEffect(enrolled, (p0, t0), value=True),
                    BoolEffect(enrolled, (p0, t0), value=False),
                ],
                DOMAIN,
            )

    def test_numeric_deltas_accumulate(self):
        effects = GroundEffects.from_effects(
            [NumEffect(stock, (t0,), delta=2), NumEffect(stock, (t0,), -1)],
            DOMAIN,
        )
        assert effects.num_deltas == {NumPred(stock, (t0,)): 1}


def solve(domain, *formulas):
    return BoundedModelFinder(domain, int_bound=8).check(*formulas)


class TestSingleStateConstraints:
    def test_assignment_pins_post_atom(self):
        effects = GroundEffects.from_effects(
            [BoolEffect(tournament, (t0,), value=False)], DOMAIN
        )
        constraints = single_state_constraints("1", effects, PREDS, DOMAIN)
        post_atom = Atom(family(tournament, "1"), (t0,))
        result = solve(DOMAIN, constraints, post_atom)
        assert not result.sat  # cannot be true: the effect pins it false

    def test_frame_preserves_unassigned(self):
        effects = GroundEffects.from_effects([], DOMAIN)
        constraints = single_state_constraints("1", effects, PREDS, DOMAIN)
        pre = Atom(tournament, (t0,))
        post = Atom(family(tournament, "1"), (t0,))
        assert not solve(DOMAIN, constraints, pre, ~post).sat
        assert not solve(DOMAIN, constraints, ~pre, post).sat

    def test_numeric_delta_applied(self):
        effects = GroundEffects.from_effects(
            [NumEffect(stock, (t0,), delta=3)], DOMAIN
        )
        constraints = single_state_constraints("1", effects, PREDS, DOMAIN)
        result = solve(
            DOMAIN,
            constraints,
            Cmp("==", NumPred(stock, (t0,)), IntConst(2)),
        )
        assert result.sat
        post = NumPred(family(stock, "1"), (t0,))
        assert result.model.value(post) == 5


class TestMergedStateConstraints:
    def _merged(self, effects1, effects2, rules):
        return merged_state_constraints(
            "m",
            GroundEffects.from_effects(effects1, DOMAIN),
            GroundEffects.from_effects(effects2, DOMAIN),
            rules,
            PREDS,
            DOMAIN,
        )

    def test_opposing_add_wins(self):
        rules = ConvergenceRules()  # default add-wins
        constraints = self._merged(
            [BoolEffect(tournament, (t0,), value=True)],
            [BoolEffect(tournament, (t0,), value=False)],
            rules,
        )
        merged_atom = Atom(family(tournament, "m"), (t0,))
        assert not solve(DOMAIN, constraints, ~merged_atom).sat

    def test_opposing_rem_wins(self):
        rules = ConvergenceRules()
        rules.set("tournament", ConvergencePolicy.REM_WINS)
        constraints = self._merged(
            [BoolEffect(tournament, (t0,), value=True)],
            [BoolEffect(tournament, (t0,), value=False)],
            rules,
        )
        merged_atom = Atom(family(tournament, "m"), (t0,))
        assert not solve(DOMAIN, constraints, merged_atom).sat

    def test_lww_leaves_atom_unconstrained(self):
        rules = ConvergenceRules(default=ConvergencePolicy.LWW)
        constraints = self._merged(
            [BoolEffect(tournament, (t0,), value=True)],
            [BoolEffect(tournament, (t0,), value=False)],
            rules,
        )
        merged_atom = Atom(family(tournament, "m"), (t0,))
        assert solve(DOMAIN, constraints, merged_atom).sat
        assert solve(DOMAIN, constraints, ~merged_atom).sat

    def test_single_sided_effect_applies(self):
        rules = ConvergenceRules()
        constraints = self._merged(
            [BoolEffect(tournament, (t0,), value=False)], [], rules
        )
        merged_atom = Atom(family(tournament, "m"), (t0,))
        assert not solve(DOMAIN, constraints, merged_atom).sat

    def test_concurrent_numeric_deltas_sum(self):
        rules = ConvergenceRules()
        constraints = self._merged(
            [NumEffect(stock, (t0,), delta=-1)],
            [NumEffect(stock, (t0,), delta=-2)],
            rules,
        )
        result = solve(
            DOMAIN,
            constraints,
            Cmp("==", NumPred(stock, (t0,)), IntConst(1)),
        )
        assert result.sat
        merged = NumPred(family(stock, "m"), (t0,))
        assert result.model.value(merged) == -2
