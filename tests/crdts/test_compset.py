"""Compensation Set tests (§4.2.2)."""

import pytest

from repro.errors import CRDTError
from repro.crdts import CompensationSet, Pattern

from tests.conftest import ctx


def filled(limit=2, elements=("t1", "t2", "t3")):
    s = CompensationSet(max_size=limit)
    for index, element in enumerate(elements, start=1):
        s.effect(
            s.prepare_add(element), ctx("A", index, {"A": index - 1})
        )
    return s


class TestConstruction:
    def test_requires_bound_or_constraint(self):
        with pytest.raises(CRDTError):
            CompensationSet()

    def test_explicit_constraint_needs_victim_rule(self):
        with pytest.raises(CRDTError):
            CompensationSet(constraint=lambda s: True)

    def test_custom_constraint_and_rule(self):
        s = CompensationSet(
            constraint=lambda elems: "forbidden" not in elems,
            select_victims=lambda elems: ("forbidden",),
        )
        s.effect(s.prepare_add("forbidden"), ctx("A", 1))
        outcome = s.read()
        assert outcome.victims == ("forbidden",)


class TestCompensatingRead:
    def test_within_bounds_no_compensation(self):
        s = filled(limit=3)
        outcome = s.read()
        assert outcome.compensation is None
        assert outcome.visible == {"t1", "t2", "t3"}
        assert s.violations_observed == 0

    def test_violation_trims_deterministically(self):
        s = filled(limit=2)
        outcome = s.read()
        assert outcome.victims == ("t3",)  # largest trimmed first
        assert outcome.visible == {"t1", "t2"}
        assert s.violations_observed == 1

    def test_compensation_payload_repairs_state(self):
        s = filled(limit=2)
        outcome = s.read()
        s.effect(outcome.compensation, ctx("A", 4, {"A": 3}))
        assert s.raw_value() == {"t1", "t2"}
        assert s.read().compensation is None

    def test_concurrent_identical_compensations_idempotent(self):
        a, b = filled(limit=2), filled(limit=2)
        out_a, out_b = a.read(), b.read()
        assert out_a.victims == out_b.victims
        for s in (a, b):
            s.effect(out_a.compensation, ctx("A", 4, {"A": 3}))
            s.effect(out_b.compensation, ctx("B", 1, {"A": 3}))
        assert a.raw_value() == b.raw_value() == {"t1", "t2"}

    def test_observed_view_always_consistent(self):
        """value() never exposes an out-of-bounds state."""
        s = filled(limit=1, elements=("a", "b", "c", "d"))
        assert len(s.value()) == 1
        assert len(s.raw_value()) == 4

    def test_compensation_only_covers_observed_adds(self):
        """A concurrent (unobserved) add survives the trim -- add-wins
        removal, as required for convergence."""
        a, b = CompensationSet(max_size=1), CompensationSet(max_size=1)
        seed1 = a.prepare_add("t1")
        c1 = ctx("A", 1)
        seed2 = a.prepare_add("t2")
        c2 = ctx("A", 2, {"A": 1})
        for s in (a, b):
            s.effect(seed1, c1)
            s.effect(seed2, c2)
        outcome = a.read()
        # Concurrent with the compensation, B adds t3.
        p3 = b.prepare_add("t3")
        c3 = ctx("B", 1, {"A": 2})
        comp_ctx = ctx("A", 3, {"A": 2})
        a.effect(outcome.compensation, comp_ctx)
        a.effect(p3, c3)
        b.effect(p3, c3)
        b.effect(outcome.compensation, comp_ctx)
        assert a.raw_value() == b.raw_value() == {"t1", "t3"}


class TestDelegation:
    def test_remove_where_delegates(self):
        s = CompensationSet(max_size=10)
        s.effect(s.prepare_add(("p1", "t1")), ctx("A", 1))
        s.effect(
            s.prepare_remove_where(Pattern.of("*", "t1")),
            ctx("A", 2, {"A": 1}),
        )
        assert s.raw_value() == set()

    def test_contains_and_len_use_compensated_view(self):
        s = filled(limit=2)
        assert len(s) == 2
        assert "t3" not in s
        assert "t1" in s
