"""Add-wins (observed-remove) set tests."""

from repro.crdts import AWSet, Pattern

from tests.conftest import ctx


def replicate(payload, context, *replicas):
    for replica in replicas:
        replica.effect(payload, context)


class TestSequential:
    def test_add_then_remove(self):
        s = AWSet()
        s.effect(s.prepare_add("x"), ctx("A", 1))
        assert "x" in s
        s.effect(s.prepare_remove("x"), ctx("A", 2, {"A": 1}))
        assert s.value() == set()

    def test_remove_nonexistent_is_noop(self):
        s = AWSet()
        s.effect(s.prepare_remove("ghost"), ctx("A", 1))
        assert s.value() == set()

    def test_re_add_after_remove(self):
        s = AWSet()
        s.effect(s.prepare_add("x"), ctx("A", 1))
        s.effect(s.prepare_remove("x"), ctx("A", 2, {"A": 1}))
        s.effect(s.prepare_add("x"), ctx("A", 3, {"A": 2}))
        assert "x" in s

    def test_len(self):
        s = AWSet()
        s.effect(s.prepare_add("x"), ctx("A", 1))
        s.effect(s.prepare_add("y"), ctx("A", 2, {"A": 1}))
        assert len(s) == 2


class TestConcurrent:
    def test_add_wins_over_concurrent_remove(self):
        a, b = AWSet(), AWSet()
        p_add = a.prepare_add("x")
        replicate(p_add, ctx("A", 1), a, b)
        # A removes; B concurrently re-adds.
        p_rem = a.prepare_remove("x")
        p_readd = b.prepare_add("x")
        c_rem, c_readd = ctx("A", 2, {"A": 1}), ctx("B", 1, {"A": 1})
        a.effect(p_rem, c_rem)
        a.effect(p_readd, c_readd)
        b.effect(p_readd, c_readd)
        b.effect(p_rem, c_rem)
        assert a.value() == b.value() == {"x"}

    def test_remove_covers_only_observed_dots(self):
        a, b = AWSet(), AWSet()
        p1 = a.prepare_add("x")
        replicate(p1, ctx("A", 1), a)
        # B adds x independently (different dot), then A's remove
        # (which only saw its own add) arrives at B.
        p2 = b.prepare_add("x")
        b.effect(p2, ctx("B", 1))
        p_rem = a.prepare_remove("x")
        b.effect(p_rem, ctx("A", 2, {"A": 1}))
        assert "x" in b  # B's own add survives

    def test_touch_behaves_as_add_for_visibility(self):
        a, b = AWSet(), AWSet()
        p_add = a.prepare_add("x")
        replicate(p_add, ctx("A", 1), a, b)
        p_rem = a.prepare_remove("x")
        p_touch = b.prepare_touch("x")
        c_rem, c_touch = ctx("A", 2, {"A": 1}), ctx("B", 1, {"A": 1})
        a.effect(p_rem, c_rem)
        a.effect(p_touch, c_touch)
        b.effect(p_touch, c_touch)
        b.effect(p_rem, c_rem)
        assert a.value() == b.value() == {"x"}


class TestWildcard:
    def test_remove_where_clears_matching(self):
        s = AWSet()
        s.effect(s.prepare_add(("p1", "t1")), ctx("A", 1))
        s.effect(s.prepare_add(("p2", "t1")), ctx("A", 2, {"A": 1}))
        s.effect(s.prepare_add(("p1", "t2")), ctx("A", 3, {"A": 2}))
        payload = s.prepare_remove_where(Pattern.of("*", "t1"))
        s.effect(payload, ctx("A", 4, {"A": 3}))
        assert s.value() == {("p1", "t2")}

    def test_remove_where_is_observed_only(self):
        """Add-wins wildcard removes do NOT kill concurrent adds."""
        a, b = AWSet(), AWSet()
        payload_rm = a.prepare_remove_where(Pattern.of("*", "t1"))
        payload_add = b.prepare_add(("p1", "t1"))
        c_rm, c_add = ctx("A", 1), ctx("B", 1)
        a.effect(payload_rm, c_rm)
        a.effect(payload_add, c_add)
        b.effect(payload_add, c_add)
        b.effect(payload_rm, c_rm)
        assert a.value() == b.value() == {("p1", "t1")}

    def test_elements_matching(self):
        s = AWSet()
        s.effect(s.prepare_add(("p1", "t1")), ctx("A", 1))
        s.effect(s.prepare_add(("p1", "t2")), ctx("A", 2, {"A": 1}))
        assert s.elements_matching(Pattern.of("p1", "*")) == {
            ("p1", "t1"), ("p1", "t2"),
        }


class TestExactlyOnceContract:
    def test_same_payload_applied_at_both_replicas_converges(self):
        a, b = AWSet(), AWSet()
        payloads = []
        contexts = []
        p = a.prepare_add("x")
        c = ctx("A", 1)
        a.effect(p, c)
        payloads.append(p)
        contexts.append(c)
        p = a.prepare_remove("x")
        c = ctx("A", 2, {"A": 1})
        a.effect(p, c)
        payloads.append(p)
        contexts.append(c)
        for p, c in zip(payloads, contexts):
            b.effect(p, c)
        assert a.value() == b.value()

    def test_dots_of(self):
        s = AWSet()
        s.effect(s.prepare_add("x"), ctx("A", 1))
        s.effect(s.prepare_add("x"), ctx("B", 1))
        assert len(s.dots_of("x")) == 2
