"""Version vector tests, including lattice properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crdts.clock import VersionVector


def vectors():
    return st.builds(
        VersionVector.of,
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=0, max_value=5),
            max_size=3,
        ),
    )


class TestBasics:
    def test_get_missing_is_zero(self):
        assert VersionVector().get("a") == 0

    def test_increment(self):
        vv = VersionVector()
        assert vv.increment("a") == 1
        assert vv.increment("a") == 2
        assert vv.get("a") == 2

    def test_contains_dot(self):
        vv = VersionVector.of({"a": 3})
        assert vv.contains_dot("a", 3)
        assert vv.contains_dot("a", 1)
        assert not vv.contains_dot("a", 4)
        assert not vv.contains_dot("b", 1)

    def test_equality_ignores_zero_entries(self):
        assert VersionVector.of({"a": 0}) == VersionVector()

    def test_copy_isolated(self):
        vv = VersionVector.of({"a": 1})
        clone = vv.copy()
        clone.increment("a")
        assert vv.get("a") == 1


class TestOrdering:
    def test_dominates(self):
        big = VersionVector.of({"a": 2, "b": 1})
        small = VersionVector.of({"a": 1})
        assert big.dominates(small)
        assert not small.dominates(big)
        assert big.strictly_dominates(small)

    def test_concurrent(self):
        left = VersionVector.of({"a": 1})
        right = VersionVector.of({"b": 1})
        assert left.concurrent(right)
        assert right.concurrent(left)

    def test_self_domination_not_strict(self):
        vv = VersionVector.of({"a": 1})
        assert vv.dominates(vv)
        assert not vv.strictly_dominates(vv.copy())


class TestLatticeProperties:
    @given(vectors(), vectors())
    @settings(max_examples=100, deadline=None)
    def test_merge_commutative(self, x, y):
        assert x.merged(y) == y.merged(x)

    @given(vectors(), vectors(), vectors())
    @settings(max_examples=100, deadline=None)
    def test_merge_associative(self, x, y, z):
        assert x.merged(y).merged(z) == x.merged(y.merged(z))

    @given(vectors())
    @settings(max_examples=50, deadline=None)
    def test_merge_idempotent(self, x):
        assert x.merged(x) == x

    @given(vectors(), vectors())
    @settings(max_examples=100, deadline=None)
    def test_merge_is_upper_bound(self, x, y):
        merged = x.merged(y)
        assert merged.dominates(x)
        assert merged.dominates(y)

    @given(vectors(), vectors())
    @settings(max_examples=100, deadline=None)
    def test_trichotomy(self, x, y):
        relations = [
            x == y,
            x.strictly_dominates(y),
            y.strictly_dominates(x),
            x.concurrent(y),
        ]
        assert relations.count(True) == 1
