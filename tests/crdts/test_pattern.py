"""Pattern matching tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crdts.pattern import Pattern, WILDCARD


class TestPattern:
    def test_exact_match(self):
        assert Pattern.of("p1", "t1").matches(("p1", "t1"))
        assert not Pattern.of("p1", "t1").matches(("p1", "t2"))

    def test_wildcard_positions(self):
        pattern = Pattern.of("*", "t1")
        assert pattern.matches(("anyone", "t1"))
        assert not pattern.matches(("anyone", "t2"))

    def test_all_wildcards(self):
        assert Pattern.of("*", "*").matches(("a", "b"))

    def test_arity_mismatch_never_matches(self):
        assert not Pattern.of("*", "*").matches(("a", "b", "c"))
        assert not Pattern.of("*").matches(("a", "b"))

    def test_scalar_elements_as_singletons(self):
        assert Pattern.of("*").matches("scalar")
        assert Pattern.of("x").matches("x")
        assert not Pattern.of("x").matches("y")

    def test_exact_constructor(self):
        assert Pattern.exact(("p1", "t1")).matches(("p1", "t1"))
        assert Pattern.exact("solo").matches("solo")

    def test_is_exact(self):
        assert Pattern.of("a", "b").is_exact
        assert not Pattern.of("a", "*").is_exact

    def test_wildcard_singleton(self):
        assert Pattern.of("*").fields[0] is WILDCARD
        assert Pattern.of("*", "x").fields[0] is Pattern.of("*", "y").fields[0]

    def test_literal_star_cannot_be_matched_literally(self):
        # "*" in Pattern.of is always a wildcard marker; document it.
        assert Pattern.of("*").matches("anything")

    @given(
        st.tuples(
            st.sampled_from(["a", "b", "*"]),
            st.sampled_from(["x", "y", "*"]),
        ),
        st.tuples(st.sampled_from(["a", "b"]), st.sampled_from(["x", "y"])),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_iff_positions_agree(self, pattern_fields, element):
        pattern = Pattern.of(*pattern_fields)
        expected = all(
            f == "*" or f == e for f, e in zip(pattern_fields, element)
        )
        assert pattern.matches(element) == expected
