"""Counter tests: PN, compensated, bounded (escrow)."""

import pytest

from repro.errors import CRDTError
from repro.crdts import BoundedCounter, CompensatedCounter, PNCounter
from repro.crdts.counter import Correction

from tests.conftest import ctx


class TestPNCounter:
    def test_initial_value(self):
        assert PNCounter(initial=5).value() == 5

    def test_increments_and_decrements(self):
        c = PNCounter()
        c.effect(c.prepare_add(3), ctx("A", 1))
        c.effect(c.prepare_add(-1), ctx("B", 1))
        assert c.value() == 2

    def test_concurrent_deltas_commute(self):
        a, b = PNCounter(), PNCounter()
        p1, c1 = a.prepare_add(2), ctx("A", 1)
        p2, c2 = b.prepare_add(-5), ctx("B", 1)
        a.effect(p1, c1)
        a.effect(p2, c2)
        b.effect(p2, c2)
        b.effect(p1, c1)
        assert a.value() == b.value() == -3


class TestCompensatedCounter:
    def make(self):
        return CompensatedCounter(
            initial=2, lower_bound=0, replenish_to=5
        )

    def test_within_bounds_no_violation(self):
        c = self.make()
        assert c.check_violation() is None

    def test_violation_produces_replenish(self):
        c = self.make()
        c.effect(c.prepare_add(-4), ctx("A", 1))
        assert c.value() == -2
        correction = c.check_violation()
        assert correction == Correction(epoch=0, amount=7)
        c.effect(correction, ctx("A", 2, {"A": 1}))
        assert c.value() == 5
        assert c.check_violation() is None
        assert c.corrections_applied == 1

    def test_duplicate_corrections_idempotent(self):
        """Two replicas detecting the same violation converge."""
        a, b = self.make(), self.make()
        delta, c_delta = a.prepare_add(-4), ctx("A", 1)
        a.effect(delta, c_delta)
        b.effect(delta, c_delta)
        corr_a = a.check_violation()
        corr_b = b.check_violation()
        assert corr_a == corr_b
        # Both replicas apply both corrections (same epoch key).
        for counter in (a, b):
            counter.effect(corr_a, ctx("A", 2, {"A": 1}))
            counter.effect(corr_b, ctx("B", 1, {"A": 1}))
        assert a.value() == b.value() == 5
        assert a.corrections_applied == 1

    def test_divergent_corrections_take_max(self):
        """Replicas seeing different deficits converge to the larger
        correction (monotonic merge)."""
        a, b = self.make(), self.make()
        d1, c1 = a.prepare_add(-4), ctx("A", 1)
        d2, c2 = b.prepare_add(-2), ctx("B", 1)
        a.effect(d1, c1)
        b.effect(d1, c1)
        b.effect(d2, c2)
        corr_small = a.check_violation()   # saw only d1: deficit 2
        corr_big = b.check_violation()     # saw both: deficit 4
        a.effect(d2, c2)  # late delivery of d2 at A
        for counter in (a, b):
            counter.effect(corr_small, ctx("A", 2, {"A": 1}))
            counter.effect(corr_big, ctx("B", 2, {"A": 1, "B": 1}))
        assert a.value() == b.value()
        assert a.value() >= 5  # replenished at least to the target

    def test_upper_bound_cancel(self):
        c = CompensatedCounter(initial=0, upper_bound=3)
        c.effect(c.prepare_add(5), ctx("A", 1))
        correction = c.check_violation()
        assert correction.amount == -2
        c.effect(correction, ctx("A", 2, {"A": 1}))
        assert c.value() == 3


class TestBoundedCounter:
    def make(self):
        counter = BoundedCounter(lower_bound=0, initial=6)
        counter.seed_rights({"A": 3, "B": 3})
        return counter

    def test_initial_below_bound_rejected(self):
        with pytest.raises(CRDTError):
            BoundedCounter(lower_bound=5, initial=3)

    def test_seed_rights_must_match_slack(self):
        counter = BoundedCounter(lower_bound=0, initial=6)
        with pytest.raises(CRDTError):
            counter.seed_rights({"A": 2})

    def test_decrement_consumes_rights(self):
        counter = self.make()
        payload = counter.prepare_decrement("A", 2)
        counter.effect(payload, ctx("A", 1))
        assert counter.value() == 4
        assert counter.rights_of("A") == 1

    def test_decrement_beyond_rights_rejected(self):
        counter = self.make()
        with pytest.raises(CRDTError, match="rights"):
            counter.prepare_decrement("A", 4)

    def test_transfer_enables_decrement(self):
        counter = self.make()
        transfer = counter.prepare_transfer("B", "A", 2)
        counter.effect(transfer, ctx("B", 1))
        payload = counter.prepare_decrement("A", 5)
        counter.effect(payload, ctx("A", 1, {"B": 1}))
        assert counter.value() == 1

    def test_bound_never_violated(self):
        """Total rights always equal value - lower bound, so local
        checks suffice to protect the bound."""
        counter = self.make()
        total_rights = counter.rights_of("A") + counter.rights_of("B")
        assert total_rights == counter.value() - counter.lower_bound

    def test_increment_adds_rights(self):
        counter = self.make()
        counter.effect(counter.prepare_increment("A", 4), ctx("A", 1))
        assert counter.value() == 10
        assert counter.rights_of("A") == 7

    def test_invalid_amounts(self):
        counter = self.make()
        with pytest.raises(CRDTError):
            counter.prepare_increment("A", 0)
        with pytest.raises(CRDTError):
            counter.prepare_decrement("A", -1)
        with pytest.raises(CRDTError):
            counter.prepare_transfer("A", "B", 0)
