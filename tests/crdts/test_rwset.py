"""Remove-wins set tests, including wildcard tombstones and GC."""

from repro.crdts import Pattern, RWSet, VersionVector

from tests.conftest import ctx


class TestSequential:
    def test_add_visible(self):
        s = RWSet()
        s.effect(s.prepare_add("x"), ctx("A", 1))
        assert "x" in s

    def test_remove_after_add(self):
        s = RWSet()
        s.effect(s.prepare_add("x"), ctx("A", 1))
        s.effect(s.prepare_remove("x"), ctx("A", 2, {"A": 1}))
        assert s.value() == set()

    def test_add_after_remove_visible(self):
        s = RWSet()
        s.effect(s.prepare_remove("x"), ctx("A", 1))
        s.effect(s.prepare_add("x"), ctx("A", 2, {"A": 1}))
        assert "x" in s

    def test_len_counts_visible(self):
        s = RWSet()
        s.effect(s.prepare_add("x"), ctx("A", 1))
        s.effect(s.prepare_add("y"), ctx("A", 2, {"A": 1}))
        s.effect(s.prepare_remove("x"), ctx("A", 3, {"A": 2}))
        assert len(s) == 1


class TestConcurrent:
    def test_remove_wins_over_concurrent_add(self):
        a, b = RWSet(), RWSet()
        seed = a.prepare_add("x")
        c_seed = ctx("A", 1)
        a.effect(seed, c_seed)
        b.effect(seed, c_seed)
        p_rem = a.prepare_remove("x")
        p_add = b.prepare_add("x")
        c_rem, c_add = ctx("A", 2, {"A": 1}), ctx("B", 1, {"A": 1})
        a.effect(p_rem, c_rem)
        a.effect(p_add, c_add)
        b.effect(p_add, c_add)
        b.effect(p_rem, c_rem)
        assert a.value() == b.value() == set()

    def test_add_after_remove_delivered_everywhere_survives(self):
        a, b = RWSet(), RWSet()
        p_rem = a.prepare_remove("x")
        c_rem = ctx("A", 1)
        a.effect(p_rem, c_rem)
        b.effect(p_rem, c_rem)
        # B adds having seen the remove: causally after -> visible.
        p_add = b.prepare_add("x")
        c_add = ctx("B", 1, {"A": 1})
        b.effect(p_add, c_add)
        a.effect(p_add, c_add)
        assert a.value() == b.value() == {"x"}

    def test_two_concurrent_removes_merge(self):
        a, b, c = RWSet(), RWSet(), RWSet()
        seed = a.prepare_add("x")
        c_seed = ctx("A", 1)
        for s in (a, b, c):
            s.effect(seed, c_seed)
        r1 = a.prepare_remove("x")
        r2 = b.prepare_remove("x")
        cr1, cr2 = ctx("A", 2, {"A": 1}), ctx("B", 1, {"A": 1})
        for s in (a, b, c):
            s.effect(r1, cr1)
            s.effect(r2, cr2)
        # An add concurrent with r2 but after r1 is still killed.
        p_add = c.prepare_add("x")
        c_add = ctx("C", 1, {"A": 2})
        for s in (a, b, c):
            s.effect(p_add, c_add)
        assert a.value() == b.value() == c.value() == set()


class TestWildcardTombstones:
    def test_pattern_kills_concurrent_matching_add(self):
        a, b = RWSet(), RWSet()
        p_clear = a.prepare_remove_where(Pattern.of("*", "t1"))
        p_add = b.prepare_add(("p1", "t1"))
        c_clear, c_add = ctx("A", 1), ctx("B", 1)
        a.effect(p_clear, c_clear)
        a.effect(p_add, c_add)
        b.effect(p_add, c_add)
        b.effect(p_clear, c_clear)
        assert a.value() == b.value() == set()

    def test_pattern_spares_non_matching(self):
        a = RWSet()
        a.effect(a.prepare_add(("p1", "t2")), ctx("A", 1))
        a.effect(
            a.prepare_remove_where(Pattern.of("*", "t1")),
            ctx("A", 2, {"A": 1}),
        )
        assert a.value() == {("p1", "t2")}

    def test_add_causally_after_pattern_survives(self):
        a = RWSet()
        a.effect(a.prepare_remove_where(Pattern.of("*", "t1")), ctx("A", 1))
        a.effect(a.prepare_add(("p1", "t1")), ctx("A", 2, {"A": 1}))
        assert a.value() == {("p1", "t1")}


class TestCompaction:
    def test_stable_tombstones_dropped(self):
        s = RWSet()
        s.effect(s.prepare_remove_where(Pattern.of("*", "t1")), ctx("A", 1))
        s.effect(s.prepare_remove("x"), ctx("A", 2, {"A": 1}))
        assert s._pattern_tombstones  # internal, pre-GC
        s.compact(VersionVector.of({"A": 2}))
        assert not s._pattern_tombstones
        assert not s._removes

    def test_unstable_tombstones_kept(self):
        s = RWSet()
        s.effect(s.prepare_remove_where(Pattern.of("*", "t1")), ctx("A", 2))
        s.compact(VersionVector.of({"A": 1}))
        assert s._pattern_tombstones

    def test_compaction_preserves_visibility(self):
        s = RWSet()
        s.effect(s.prepare_add("x"), ctx("A", 1))
        s.effect(s.prepare_remove("y"), ctx("A", 2, {"A": 1}))
        before = s.value()
        s.compact(VersionVector.of({"A": 2}))
        assert s.value() == before == {"x"}

    def test_post_compaction_add_visible(self):
        """After GC of a stable remove, later adds still work."""
        s = RWSet()
        s.effect(s.prepare_remove("x"), ctx("A", 1))
        s.compact(VersionVector.of({"A": 1}))
        s.effect(s.prepare_add("x"), ctx("B", 1, {"A": 1}))
        assert "x" in s
