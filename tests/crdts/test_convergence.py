"""Property-based convergence tests.

The paper's whole construction rests on the CRDTs converging under any
causally-consistent delivery order.  These tests generate random
operation sequences issued at three replicas, then deliver the payloads
to every other replica in *random causally-legal orders* and assert all
replicas reach the same state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crdts import AWSet, CompensationSet, Pattern, PNCounter, RWSet
from repro.crdts.base import Dot, EventContext
from repro.crdts.clock import VersionVector

REPLICAS = ("A", "B", "C")
ELEMENTS = (("p1", "t1"), ("p2", "t1"), ("p1", "t2"))
PATTERNS = (Pattern.of("*", "t1"), Pattern.of("p1", "*"))


@dataclass
class Event:
    origin: str
    payload: object
    ctx: EventContext

    @property
    def deps(self) -> VersionVector:
        deps = self.ctx.vv.copy()
        deps.entries[self.origin] = self.ctx.dot.counter - 1
        return deps


@dataclass
class Harness:
    """Three replicas of one CRDT with causal delivery."""

    factory: type
    replicas: dict = field(default_factory=dict)
    seen: dict = field(default_factory=dict)
    events: list = field(default_factory=list)

    def __post_init__(self):
        for replica in REPLICAS:
            self.replicas[replica] = self.factory()
            self.seen[replica] = VersionVector()

    def issue(self, origin: str, prepare) -> None:
        """Prepare at the origin, apply there, record for delivery."""
        crdt = self.replicas[origin]
        payload = prepare(crdt)
        vv = self.seen[origin].copy()
        counter = vv.increment(origin)
        ctx = EventContext(Dot(origin, counter), vv.copy())
        crdt.effect(payload, ctx)
        self.seen[origin] = vv
        self.events.append(Event(origin, payload, ctx))

    def deliver_all(self, rng: random.Random) -> None:
        """Deliver every event everywhere, in random legal orders."""
        for replica in REPLICAS:
            pending = [e for e in self.events if e.origin != replica]
            seen = self.seen[replica]
            while pending:
                deliverable = [
                    e for e in pending
                    if seen.dominates(e.deps)
                    and e.ctx.dot.counter == seen.get(e.origin) + 1
                ]
                assert deliverable, "causal delivery deadlock"
                event = rng.choice(deliverable)
                self.replicas[replica].effect(event.payload, event.ctx)
                seen.entries[event.origin] = event.ctx.dot.counter
                pending.remove(event)

    def values(self) -> list:
        out = []
        for replica in REPLICAS:
            crdt = self.replicas[replica]
            raw = crdt.raw_value() if hasattr(crdt, "raw_value") else None
            out.append((crdt.value(), raw))
        return out


def set_ops():
    """Strategy: one random set operation."""
    return st.one_of(
        st.tuples(st.just("add"), st.sampled_from(ELEMENTS)),
        st.tuples(st.just("remove"), st.sampled_from(ELEMENTS)),
        st.tuples(st.just("touch"), st.sampled_from(ELEMENTS)),
        st.tuples(st.just("remove_where"), st.sampled_from(PATTERNS)),
    )


def apply_set_op(harness: Harness, origin: str, op) -> None:
    kind, arg = op
    if kind == "add":
        harness.issue(origin, lambda s: s.prepare_add(arg))
    elif kind == "remove":
        harness.issue(origin, lambda s: s.prepare_remove(arg))
    elif kind == "touch":
        harness.issue(origin, lambda s: s.prepare_touch(arg))
    else:
        harness.issue(origin, lambda s: s.prepare_remove_where(arg))


script = st.lists(
    st.tuples(st.sampled_from(REPLICAS), set_ops()),
    min_size=1,
    max_size=12,
)


class TestSetConvergence:
    @given(script, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=150, deadline=None)
    def test_awset_converges(self, ops, seed):
        harness = Harness(AWSet)
        for origin, op in ops:
            apply_set_op(harness, origin, op)
        harness.deliver_all(random.Random(seed))
        values = [v for v, _raw in harness.values()]
        assert values[0] == values[1] == values[2]

    @given(script, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=150, deadline=None)
    def test_rwset_converges(self, ops, seed):
        harness = Harness(RWSet)
        for origin, op in ops:
            apply_set_op(harness, origin, op)
        harness.deliver_all(random.Random(seed))
        values = [v for v, _raw in harness.values()]
        assert values[0] == values[1] == values[2]

    @given(script, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_delivery_order_independence(self, ops, seed):
        """Two different legal delivery orders give identical states."""
        for crdt_type in (AWSet, RWSet):
            h1, h2 = Harness(crdt_type), Harness(crdt_type)
            for origin, op in ops:
                apply_set_op(h1, origin, op)
                apply_set_op(h2, origin, op)
            h1.deliver_all(random.Random(seed))
            h2.deliver_all(random.Random(seed + 1))
            assert [v for v, _ in h1.values()] == [
                v for v, _ in h2.values()
            ]


class TestSemanticsUnderConcurrency:
    @given(script, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_rem_wins_stronger_than_add_wins(self, ops, seed):
        """Any element visible under rem-wins is visible under add-wins
        (removes only ever kill MORE under rem-wins)."""
        aw, rw = Harness(AWSet), Harness(RWSet)
        for origin, op in ops:
            apply_set_op(aw, origin, op)
            apply_set_op(rw, origin, op)
        aw.deliver_all(random.Random(seed))
        rw.deliver_all(random.Random(seed))
        aw_value = aw.values()[0][0]
        rw_value = rw.values()[0][0]
        assert rw_value <= aw_value


class TestCounterConvergence:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(REPLICAS),
                st.integers(min_value=-3, max_value=3).filter(bool),
            ),
            min_size=1,
            max_size=10,
        ),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_pncounter_converges(self, deltas, seed):
        harness = Harness(PNCounter)
        for origin, delta in deltas:
            harness.issue(origin, lambda c, d=delta: c.prepare_add(d))
        harness.deliver_all(random.Random(seed))
        values = [v for v, _ in harness.values()]
        assert values[0] == values[1] == values[2]
        assert values[0] == sum(d for _o, d in deltas)


class TestCompensationSetConvergence:
    @given(script, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=75, deadline=None)
    def test_compensated_raw_state_converges(self, ops, seed):
        harness = Harness(lambda: CompensationSet(max_size=2))
        for origin, op in ops:
            if op[0] == "touch":
                op = ("add", op[1])
            apply_set_op(harness, origin, op)
        # Interleave compensating reads: each replica repairs what it
        # sees, committing the compensation as a new event.
        for replica in REPLICAS:
            outcome = harness.replicas[replica].read()
            if outcome.compensation is not None:
                harness.issue(
                    replica, lambda _s, p=outcome.compensation: p
                )
        harness.deliver_all(random.Random(seed))
        raws = [raw for _v, raw in harness.values()]
        assert raws[0] == raws[1] == raws[2]
        # And every observed (compensated) view is within bounds.
        for replica in REPLICAS:
            assert len(harness.replicas[replica].value()) <= 2
