"""LWW register, OR-map (touch/payload preservation) and id generation."""

from repro.crdts import (
    AWSet,
    LWWRegister,
    ORMap,
    Pattern,
    UniqueIdGenerator,
    VersionVector,
)
from repro.crdts.lww import LWWWrite

from tests.conftest import ctx


class TestLWWRegister:
    def test_initial(self):
        assert LWWRegister("unset").value() == "unset"

    def test_sequential_writes(self):
        reg = LWWRegister()
        reg.effect(reg.prepare_write("a"), ctx("A", 1))
        reg.effect(reg.prepare_write("b"), ctx("A", 2, {"A": 1}))
        assert reg.value() == "b"

    def test_concurrent_writes_deterministic(self):
        a, b = LWWRegister(), LWWRegister()
        pa, ca = a.prepare_write("from-a"), ctx("A", 1)
        pb, cb = b.prepare_write("from-b"), ctx("B", 1)
        a.effect(pa, ca)
        a.effect(pb, cb)
        b.effect(pb, cb)
        b.effect(pa, ca)
        assert a.value() == b.value()
        # Same stamp: the larger replica id wins.
        assert a.value() == "from-b"

    def test_later_stamp_wins_regardless_of_replica(self):
        reg = LWWRegister()
        reg.effect(LWWWrite("old", 1), ctx("Z", 1))
        reg.effect(LWWWrite("new", 2), ctx("A", 1))
        assert reg.value() == "new"


class TestORMap:
    def make(self, semantics="add-wins"):
        return ORMap(lambda: LWWRegister(), key_semantics=semantics)

    def test_put_and_update(self):
        m = self.make()
        m.effect(m.prepare_put("alice"), ctx("A", 1))
        payload = m.prepare_update(
            "alice", lambda reg: reg.prepare_write("Alice Smith")
        )
        m.effect(payload, ctx("A", 2, {"A": 1}))
        assert m.get("alice").value() == "Alice Smith"
        assert m.value() == {"alice": "Alice Smith"}

    def test_update_implies_visibility(self):
        m = self.make()
        payload = m.prepare_update(
            "bob", lambda reg: reg.prepare_write("Bob")
        )
        m.effect(payload, ctx("A", 1))
        assert "bob" in m

    def test_remove_hides_but_preserves_payload(self):
        m = self.make()
        m.effect(
            m.prepare_update("alice", lambda r: r.prepare_write("Alice")),
            ctx("A", 1),
        )
        m.effect(m.prepare_remove("alice"), ctx("A", 2, {"A": 1}))
        assert m.get("alice") is None
        assert m.peek("alice").value() == "Alice"

    def test_touch_restores_payload(self):
        """The §4.2.1 touch: re-appearing entities keep their data."""
        m = self.make()
        m.effect(
            m.prepare_update("alice", lambda r: r.prepare_write("Alice")),
            ctx("A", 1),
        )
        m.effect(m.prepare_remove("alice"), ctx("A", 2, {"A": 1}))
        m.effect(m.prepare_touch("alice"), ctx("B", 1, {"A": 1}))
        assert "alice" in m
        assert m.get("alice").value() == "Alice"

    def test_concurrent_remove_and_touch_add_wins(self):
        a, b = self.make(), self.make()
        seed = a.prepare_update("u", lambda r: r.prepare_write("payload"))
        c_seed = ctx("A", 1)
        a.effect(seed, c_seed)
        b.effect(seed, c_seed)
        p_rem = a.prepare_remove("u")
        p_touch = b.prepare_touch("u")
        c_rem, c_touch = ctx("A", 2, {"A": 1}), ctx("B", 1, {"A": 1})
        a.effect(p_rem, c_rem)
        a.effect(p_touch, c_touch)
        b.effect(p_touch, c_touch)
        b.effect(p_rem, c_rem)
        assert "u" in a and "u" in b
        assert a.get("u").value() == b.get("u").value() == "payload"

    def test_rem_wins_key_semantics(self):
        a, b = self.make("rem-wins"), self.make("rem-wins")
        seed = a.prepare_put("u")
        c_seed = ctx("A", 1)
        a.effect(seed, c_seed)
        b.effect(seed, c_seed)
        p_rem = a.prepare_remove("u")
        p_touch = b.prepare_touch("u")
        c_rem, c_touch = ctx("A", 2, {"A": 1}), ctx("B", 1, {"A": 1})
        a.effect(p_rem, c_rem)
        a.effect(p_touch, c_touch)
        b.effect(p_touch, c_touch)
        b.effect(p_rem, c_rem)
        assert "u" not in a and "u" not in b

    def test_compact_drops_tombstoned_values(self):
        m = self.make()
        m.effect(
            m.prepare_update("alice", lambda r: r.prepare_write("Alice")),
            ctx("A", 1),
        )
        m.effect(m.prepare_remove("alice"), ctx("A", 2, {"A": 1}))
        m.compact(VersionVector.of({"A": 2}))
        assert m.peek("alice") is None

    def test_remove_where_on_keys(self):
        m = ORMap(AWSet, key_semantics="add-wins")
        m.effect(m.prepare_put(("p1", "t1")), ctx("A", 1))
        m.effect(m.prepare_put(("p2", "t1")), ctx("A", 2, {"A": 1}))
        payload = m.prepare_remove_where(Pattern.of("*", "t1"))
        m.effect(payload, ctx("A", 3, {"A": 2}))
        assert m.keys() == set()


class TestUniqueIdGenerator:
    def test_ids_unique_within_replica(self):
        gen = UniqueIdGenerator("us-east")
        ids = [gen.next_id() for _ in range(100)]
        assert len(set(ids)) == 100
        assert gen.issued == 100

    def test_ids_disjoint_across_replicas(self):
        east = UniqueIdGenerator("us-east")
        west = UniqueIdGenerator("us-west")
        east_ids = {east.next_id() for _ in range(50)}
        west_ids = {west.next_id() for _ in range(50)}
        assert not east_ids & west_ids
