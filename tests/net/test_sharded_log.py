"""Sharded commit log: routed appends, seq-merged parallel replay.

The sharded log must be indistinguishable from the single-file log at
the record level: replay returns the exact append order whatever the
shard count, the single-shard configuration stays byte-identical to
the historical format, and the crash contract (damaged final frame per
shard file) carries over unchanged.
"""

import os

import pytest

from repro.crdts import AWSet
from repro.net import commitlog
from repro.store.engine import HashRing
from repro.store.registry import TypeRegistry
from repro.store.replica import Replica


def make_records(n, keys=("s0", "s1", "s2", "s3", "s4")):
    """n commit records spread over several keys (route targets)."""
    registry = TypeRegistry()
    registry.register_prefix("", AWSet)
    replica = Replica("A", registry)
    records = []
    for i in range(n):
        txn = replica.begin()
        txn.update(keys[i % len(keys)], lambda s, i=i: s.prepare_add(f"e{i}"))
        records.append(txn.commit())
    return records


class TestSingleShardCompatibility:
    def test_byte_identical_to_plain_log(self, tmp_path):
        records = make_records(6)
        plain = tmp_path / "plain" / "A.commitlog"
        plain.parent.mkdir()
        with commitlog.CommitLog(plain) as log:
            for record in records:
                log.append(record)
        sharded_dir = tmp_path / "sharded"
        sharded_dir.mkdir()
        with commitlog.ShardedCommitLog(str(sharded_dir), "A", shards=1) as log:
            for record in records:
                log.append(record)
        assert log.paths == (str(sharded_dir / "A.commitlog"),)
        assert (sharded_dir / "A.commitlog").read_bytes() == plain.read_bytes()

    def test_replays_legacy_log_in_place(self, tmp_path):
        """A pre-sharding data dir opens as a 1-shard ShardedCommitLog."""
        records = make_records(4)
        with commitlog.CommitLog(tmp_path / "A.commitlog") as log:
            for record in records:
                log.append(record)
        sharded = commitlog.ShardedCommitLog(str(tmp_path), "A", shards=1)
        assert sharded.replay() == records
        sharded.close()


@pytest.mark.parametrize("shards", [2, 4, 8])
class TestShardedReplay:
    def test_replay_merges_back_to_append_order(self, tmp_path, shards):
        records = make_records(40)
        with commitlog.ShardedCommitLog(str(tmp_path), "A", shards=shards) as log:
            for record in records:
                log.append(record)
            used = [path for path in log.paths if os.path.getsize(path)]
            assert len(used) > 1, "workload never spread across shards"
        fresh = commitlog.ShardedCommitLog(str(tmp_path), "A", shards=shards)
        assert fresh.replay() == records
        fresh.close()

    def test_seq_resumes_after_restart(self, tmp_path, shards):
        records = make_records(20)
        with commitlog.ShardedCommitLog(str(tmp_path), "A", shards=shards) as log:
            for record in records[:12]:
                log.append(record)
        revived = commitlog.ShardedCommitLog(str(tmp_path), "A", shards=shards)
        assert revived.replay() == records[:12]
        for record in records[12:]:
            revived.append(record)
        revived.close()
        final = commitlog.ShardedCommitLog(str(tmp_path), "A", shards=shards)
        assert final.replay() == records
        final.close()

    def test_tail_damage_per_shard_file(self, tmp_path, shards):
        """A torn final frame in one shard file loses that record only;
        the merged replay keeps every other record in order."""
        records = make_records(30)
        with commitlog.ShardedCommitLog(str(tmp_path), "A", shards=shards) as log:
            for record in records:
                log.append(record)
        victim = next(path for path in log.paths if os.path.getsize(path) > 0)
        lost = commitlog.replay(victim)[-1]
        with open(victim, "r+b") as fh:
            fh.truncate(os.path.getsize(victim) - 3)
        fresh = commitlog.ShardedCommitLog(str(tmp_path), "A", shards=shards)
        replayed = fresh.replay()
        fresh.close()
        assert replayed == [r for r in records if r != lost]

    def test_routing_matches_store_ring(self, tmp_path, shards):
        """Log routing and store routing share the HashRing: a record
        lands in the shard file owning its first updated key."""
        records = make_records(25)
        with commitlog.ShardedCommitLog(str(tmp_path), "A", shards=shards) as log:
            for record in records:
                log.append(record)
        ring = HashRing(shards)
        by_shard = {
            index: [r for _s, r in commitlog.replay_indexed(path)]
            for index, path in enumerate(log.paths)
        }
        for record in records:
            owner = ring.shard_of(record.updates[0][0])
            assert record in by_shard[owner]


class TestShardedLogErrors:
    def test_untagged_record_in_sharded_log_raises(self, tmp_path):
        records = make_records(1)
        path = commitlog.shard_log_paths(str(tmp_path), "A", 2)[0]
        with commitlog.CommitLog(path) as log:
            log.append(records[0])  # no seq tag
        sharded = commitlog.ShardedCommitLog(str(tmp_path), "A", shards=2)
        with pytest.raises(commitlog.CommitLogError, match="sequence tag"):
            sharded.replay()
        sharded.close()

    def test_zero_shards_rejected(self, tmp_path):
        with pytest.raises(commitlog.CommitLogError, match=">= 1"):
            commitlog.ShardedCommitLog(str(tmp_path), "A", shards=0)

    def test_empty_dir_replays_empty(self, tmp_path):
        sharded = commitlog.ShardedCommitLog(str(tmp_path), "A", shards=4)
        assert sharded.replay() == []
        sharded.append(make_records(1)[0])
        sharded.close()
