"""Wire codec and framing round-trips."""

import asyncio

import pytest

from repro.crdts import AWSet
from repro.crdts.base import Dot
from repro.crdts.clock import VersionVector
from repro.net import wire
from repro.store.registry import TypeRegistry
from repro.store.replica import Replica


def make_record(element="x"):
    registry = TypeRegistry()
    registry.register_prefix("", AWSet)
    replica = Replica("A", registry)
    txn = replica.begin()
    txn.update("s", lambda s: s.prepare_add(element))
    return txn.commit()


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            3.5,
            "text",
            (1, 2, "three"),
            [1, [2, [3]]],
            {"a": 1, 2: "b", (3, 4): [5]},
            {1, 2, 3},
            frozenset({("a", 1), ("b", 2)}),
            (),
            {},
            set(),
        ],
    )
    def test_round_trip(self, value):
        assert wire.decode(wire.encode(value)) == value

    def test_tuple_and_list_stay_distinct(self):
        assert wire.decode(wire.encode((1, 2))) == (1, 2)
        assert wire.decode(wire.encode([1, 2])) == [1, 2]
        assert isinstance(wire.decode(wire.encode((1, 2))), tuple)
        assert isinstance(wire.decode(wire.encode([1, 2])), list)

    def test_set_encoding_is_deterministic(self):
        a = wire.dump_frame({"v": {3, 1, 2}})
        b = wire.dump_frame({"v": {2, 3, 1}})
        assert a == b

    def test_dataclass_round_trip(self):
        dot = Dot("us-east", 4)
        assert wire.decode(wire.encode(dot)) == dot
        vv = VersionVector({"us-east": 4, "eu-west": 1})
        assert wire.decode(wire.encode(vv)) == vv

    def test_commit_record_round_trip(self):
        record = make_record()
        decoded = wire.decode(wire.encode(record))
        assert decoded == record
        assert decoded.dot == record.dot
        assert decoded.origin == record.origin

    def test_unregistered_dataclass_rejected(self):
        import dataclasses

        @dataclasses.dataclass
        class Rogue:
            x: int

        with pytest.raises(wire.WireError, match="unregistered"):
            wire.encode(Rogue(1))

    def test_unknown_class_name_rejected(self):
        with pytest.raises(wire.WireError, match="unknown wire class"):
            wire.decode({"c": "NoSuchClass", "f": {}})

    def test_unknown_tag_rejected(self):
        with pytest.raises(wire.WireError):
            wire.decode({"zz": [1]})


class TestFraming:
    def test_dump_load_round_trip(self):
        message = {"type": "records", "records": (make_record(),)}
        frame = wire.dump_frame(message)
        assert wire.load_frame(frame[4:]) == message

    def test_oversized_frame_rejected(self):
        big = "x" * (wire.MAX_FRAME + 1)
        with pytest.raises(wire.WireError, match="exceeds"):
            wire.dump_frame({"v": big})

    def test_garbage_body_rejected(self):
        with pytest.raises(wire.WireError, match="undecodable"):
            wire.load_frame(b"\xff\xfenot json")

    def test_non_dict_frame_rejected(self):
        import json

        # A validly-tagged list decodes fine but is not a message dict.
        with pytest.raises(wire.WireError, match="not a message"):
            wire.load_frame(json.dumps({"l": [1, 2]}).encode())


class TestStreamFraming:
    def _read(self, data: bytes, raw: bool = False):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            if raw:
                return await wire.read_raw_frame(reader)
            return await wire.read_frame(reader)

        return asyncio.run(go())

    def test_read_frame_round_trip(self):
        message = {"type": "status", "x": (1, 2)}
        assert self._read(wire.dump_frame(message)) == message

    def test_read_frame_clean_eof_returns_none(self):
        assert self._read(b"") is None

    def test_read_frame_torn_prefix_raises(self):
        with pytest.raises(wire.WireError, match="mid length prefix"):
            self._read(b"\x00\x00")

    def test_read_frame_torn_body_raises(self):
        frame = wire.dump_frame({"type": "status"})
        with pytest.raises(wire.WireError, match="mid frame"):
            self._read(frame[:-2])

    def test_read_frame_oversized_length_raises(self):
        with pytest.raises(wire.WireError, match="exceeds"):
            self._read(b"\xff\xff\xff\xff")

    def test_read_raw_frame_preserves_bytes(self):
        frame = wire.dump_frame({"type": "op", "index": 3})
        assert self._read(frame + frame, raw=True) == frame
