"""Failure-detection primitive units: detector, breaker, hint queue.

Every machine in :mod:`repro.net.health` is clock-free -- callers pass
``now_ms`` -- so these tests drive them with a fake clock and pin the
exact edges the live fleet depends on: when suspicion trips, when a
breaker half-opens, and what a hint queue preserves across a process
death of the *holding* replica.
"""

import pytest

from repro.net import commitlog
from repro.net.health import CircuitBreaker, FailureDetector, HintQueue
from repro.net.retry import RetryPolicy


def make_detector(**kwargs):
    kwargs.setdefault("interval_ms", 100.0)
    return FailureDetector(("a", "b"), **kwargs)


class TestFailureDetector:
    def test_steady_heartbeats_stay_up(self):
        detector = make_detector()
        now = 0.0
        for _ in range(20):
            now += 100.0
            detector.note_alive("a", now)
        assert detector.is_up("a", now + 150.0)
        assert detector.phi("a", now) == 0.0
        assert detector.suspects == 0
        assert detector.heartbeats == 20

    def test_long_silence_trips_suspicion_once(self):
        detector = make_detector()
        now = 0.0
        for _ in range(5):
            now += 100.0
            detector.note_alive("a", now)
        # phi = log10(e) * elapsed / mean: threshold 8 needs ~18.4x
        # the 100ms mean interval of silence.
        assert detector.is_up("a", now + 1000.0)
        assert not detector.is_up("a", now + 3000.0)
        assert not detector.is_up("a", now + 4000.0)
        assert detector.suspects == 1  # edge-counted, not per poll

    def test_heartbeat_after_suspicion_is_a_recovery(self):
        detector = make_detector()
        assert not detector.is_up("a", 10_000.0)
        assert detector.note_alive("a", 10_001.0) is True
        assert detector.is_up("a", 10_002.0)
        assert detector.recoveries == 1

    def test_heartbeat_while_up_is_not_a_recovery(self):
        detector = make_detector()
        assert detector.note_alive("a", 100.0) is False
        assert detector.recoveries == 0

    def test_burst_cannot_make_detector_hair_triggered(self):
        detector = make_detector()
        now = 0.0
        for _ in range(32):  # fill the window with ~0ms gaps
            now += 0.001
            detector.note_alive("a", now)
        # The mean is floored at interval_ms: a silence that steady
        # heartbeats would tolerate must still be tolerated.
        assert detector.phi("a", now + 500.0) < detector.threshold
        assert detector.is_up("a", now + 500.0)

    def test_unknown_peer_is_ignored(self):
        detector = make_detector()
        assert detector.note_alive("stranger", 50.0) is False
        assert detector.heartbeats == 0

    def test_never_heard_peer_suspected_from_start_ms(self):
        detector = FailureDetector(("a",), 100.0, start_ms=5000.0)
        assert detector.is_up("a", 5100.0)
        assert not detector.is_up("a", 5000.0 + 3000.0)

    def test_snapshot_reports_per_peer_verdicts(self):
        detector = make_detector()
        detector.note_alive("a", 100.0)
        snap = detector.snapshot(200.0)
        assert set(snap["peers"]) == {"a", "b"}
        assert snap["peers"]["a"]["up"] is True
        assert snap["peers"]["a"]["silence_ms"] == 100.0
        assert snap["suspects"] == 0

    def test_up_count(self):
        detector = make_detector()
        detector.note_alive("a", 10_000.0)
        assert detector.up_count(10_001.0) == 1  # b silent since 0


def make_breaker(threshold=3):
    policy = RetryPolicy(base_ms=100.0, cap_ms=1000.0, seed=7)
    return CircuitBreaker(policy, failure_threshold=threshold)


class TestCircuitBreaker:
    def test_closed_allows_everything(self):
        breaker = make_breaker()
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == "closed"
        assert breaker.allow(0.0)

    def test_threshold_failures_open_the_circuit(self):
        breaker = make_breaker()
        for _ in range(3):
            breaker.record_failure(0.0)
        assert breaker.state == "open"
        assert breaker.opened == 1
        assert not breaker.allow(0.0)
        assert breaker.cooldown_remaining_ms(0.0) > 0.0

    def test_cooldown_half_opens_for_exactly_one_probe(self):
        breaker = make_breaker()
        for _ in range(3):
            breaker.record_failure(0.0)
        later = breaker.cooldown_remaining_ms(0.0) + 1.0
        assert breaker.allow(later)  # the single probe
        assert breaker.state == "half-open"
        assert not breaker.allow(later)  # held until the probe decides

    def test_probe_success_closes_and_resets(self):
        breaker = make_breaker()
        for _ in range(3):
            breaker.record_failure(0.0)
        later = breaker.cooldown_remaining_ms(0.0) + 1.0
        assert breaker.allow(later)
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow(later)
        # The failure count reset too: reopening needs a full streak.
        breaker.record_failure(later)
        assert breaker.state == "closed"

    def test_probe_failure_reopens_immediately(self):
        breaker = make_breaker()
        for _ in range(3):
            breaker.record_failure(0.0)
        later = breaker.cooldown_remaining_ms(0.0) + 1.0
        assert breaker.allow(later)
        breaker.record_failure(later)  # one probe failure, not three
        assert breaker.state == "open"
        assert breaker.opened == 2
        assert not breaker.allow(later)

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            make_breaker(threshold=0)


def make_hint(n):
    return {"type": "record-batch", "seq": n, "records": []}


class TestHintQueue:
    def test_append_drain_preserves_order(self, tmp_path):
        queue = HintQueue(str(tmp_path / "peer.hints"))
        for n in range(5):
            queue.append(make_hint(n))
        assert len(queue) == 5
        assert [m["seq"] for m in queue.drain()] == [0, 1, 2, 3, 4]
        assert len(queue) == 0

    def test_hints_survive_holder_crash(self, tmp_path):
        path = str(tmp_path / "peer.hints")
        queue = HintQueue(path)
        for n in range(3):
            queue.append(make_hint(n))
        queue.close()  # process death: no drain
        reborn = HintQueue(path)
        assert [m["seq"] for m in reborn.drain()] == [0, 1, 2]

    def test_drain_truncates_the_file(self, tmp_path):
        path = str(tmp_path / "peer.hints")
        queue = HintQueue(path)
        queue.append(make_hint(0))
        queue.drain()
        queue.close()
        assert len(HintQueue(path)) == 0

    def test_bound_evicts_oldest_and_counts_drops(self, tmp_path):
        queue = HintQueue(str(tmp_path / "peer.hints"), limit=3)
        for n in range(5):
            queue.append(make_hint(n))
        assert queue.dropped == 2
        assert [m["seq"] for m in queue.drain()] == [2, 3, 4]

    def test_bound_applies_on_reload_too(self, tmp_path):
        path = str(tmp_path / "peer.hints")
        queue = HintQueue(path, limit=10)
        for n in range(5):
            queue.append(make_hint(n))
        queue.close()
        reborn = HintQueue(path, limit=2)
        assert reborn.dropped == 3
        assert [m["seq"] for m in reborn.drain()] == [3, 4]

    def test_mangled_hint_is_skipped_not_fatal(self, tmp_path):
        path = str(tmp_path / "peer.hints")
        queue = HintQueue(path)
        queue.append(make_hint(0))
        queue.close()
        with open(path, "ab") as fh:
            # CRC-valid frame whose body is not a wire message.
            fh.write(commitlog.frame(b"not json at all"))
        queue = HintQueue(path)
        queue.append(make_hint(1))
        assert [m["seq"] for m in queue.drain()] == [0, 1]

    def test_limit_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            HintQueue(str(tmp_path / "peer.hints"), limit=0)
