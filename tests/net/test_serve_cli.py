"""Process-level deployment: subprocess servers and the CLI entry points.

These spawn real ``python -m repro serve`` processes (one per region),
SIGKILL one mid-run, and check the restarted process recovers from its
commit log to the simulator's exact digests.
"""

import asyncio
import json
import sys

import pytest

from repro.check.explorer import PLAN_KINDS, build_trial
from repro.net.harness import run_live
from repro.net.oracle import record_trial


@pytest.mark.timeout(120)
class TestSubprocessServers:
    def test_crash_plan_with_real_processes(self, tmp_path):
        assert PLAN_KINDS[3] == "partition-crash"
        spec = build_trial("tournament", "Causal", 11, 3, n_ops=25)
        _, deployment = record_trial(spec)
        report = asyncio.run(
            run_live(
                deployment,
                str(tmp_path),
                time_scale=0.05,
                deadline_s=90.0,
                subprocess_servers=True,
            )
        )
        assert report.crashes == 1
        assert report.ok, report.reason
        assert report.digest_match


@pytest.mark.timeout(120)
class TestLoadCommand:
    def test_load_writes_bench_report_and_exits_zero(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "BENCH_serve.json"
        code = main(
            [
                "load",
                "tournament",
                "--config",
                "Causal",
                "--seed",
                "11",
                "--index",
                "0",
                "--n-ops",
                "15",
                "--time-scale",
                "0.02",
                "--workdir",
                str(tmp_path / "cluster"),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "digests byte-identical to the simulation" in text
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "serve"
        assert payload["digest_match"] is True
        assert payload["n_ops"] == 15
        assert payload["throughput_ops_per_s"] > 0

    def test_load_json_output(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(
            [
                "load",
                "tournament",
                "--index",
                "0",
                "--n-ops",
                "10",
                "--time-scale",
                "0.02",
                "--workdir",
                str(tmp_path / "cluster"),
                "--json",
            ]
        )
        assert code == 0
        # --json prints the payload between human-readable status lines.
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{") : out.rindex("}") + 1])
        assert payload["digest_match"] is True


class TestServeCommandValidation:
    def test_serve_rejects_unknown_region(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.net.harness import build_topology
        from repro.net.oracle import write_deployment

        spec = build_trial("tournament", "Causal", 11, 0, n_ops=5)
        _, deployment = record_trial(spec)
        dep_path = tmp_path / "deployment.json"
        write_deployment(dep_path, deployment)
        topology = build_topology(tuple(sorted(deployment["schedules"])))
        topo_path = tmp_path / "topology.json"
        topo_path.write_text(json.dumps(topology))
        code = main(
            [
                "serve",
                "--deployment",
                str(dep_path),
                "--topology",
                str(topo_path),
                "--region",
                "mars-1",
                "--data-dir",
                str(tmp_path / "data"),
            ]
        )
        assert code == 2
        assert "mars-1" in capsys.readouterr().err

    def test_serve_smoke_over_real_sockets(self, tmp_path):
        """`repro serve` as a real child process: starts, reports status
        over its client socket, and shuts down cleanly on SIGTERM."""
        import signal
        import subprocess
        import time

        from repro.net.client import fetch_status
        from repro.net.harness import build_topology
        from repro.net.oracle import write_deployment

        spec = build_trial("tournament", "Causal", 11, 0, n_ops=5)
        _, deployment = record_trial(spec)
        dep_path = tmp_path / "deployment.json"
        write_deployment(dep_path, deployment)
        regions = tuple(sorted(deployment["schedules"]))
        topology = build_topology(regions)
        topo_path = tmp_path / "topology.json"
        topo_path.write_text(json.dumps(topology))
        region = regions[0]
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--deployment",
                str(dep_path),
                "--topology",
                str(topo_path),
                "--region",
                region,
                "--data-dir",
                str(tmp_path / "data"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            status = None
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    status = asyncio.run(
                        fetch_status(
                            "127.0.0.1",
                            topology["regions"][region]["client_port"],
                        )
                    )
                    break
                except OSError:
                    time.sleep(0.1)
            assert status is not None, "server never answered status"
            assert status["region"] == region
            assert status["position"] == 0
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=15)
            assert proc.returncode == 0
            assert f"serving {region}" in output
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
