"""Property tests for the shared decorrelated-jitter retry policy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.net.retry import RetryPolicy


class TestValidation:
    def test_rejects_nonpositive_base(self):
        with pytest.raises(ReproError, match="positive"):
            RetryPolicy(base_ms=0.0, cap_ms=100.0)

    def test_rejects_cap_below_base(self):
        with pytest.raises(ReproError, match="below base"):
            RetryPolicy(base_ms=100.0, cap_ms=50.0)


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        base=st.floats(min_value=1.0, max_value=1_000.0),
        factor=st.floats(min_value=1.0, max_value=100.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        draws=st.integers(min_value=1, max_value=40),
    )
    def test_every_delay_within_base_and_cap(self, base, factor, seed, draws):
        cap = base * factor
        policy = RetryPolicy(base_ms=base, cap_ms=cap, seed=seed)
        for _ in range(draws):
            delay = policy.next_delay_ms()
            assert base <= delay <= cap

    @settings(max_examples=100, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        draws=st.integers(min_value=1, max_value=20),
    )
    def test_same_seed_same_sequence(self, seed, draws):
        a = RetryPolicy(base_ms=10.0, cap_ms=5_000.0, seed=seed)
        b = RetryPolicy(base_ms=10.0, cap_ms=5_000.0, seed=seed)
        assert [a.next_delay_ms() for _ in range(draws)] == [
            b.next_delay_ms() for _ in range(draws)
        ]

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_reset_returns_to_base_window(self, seed):
        policy = RetryPolicy(base_ms=10.0, cap_ms=100_000.0, seed=seed)
        for _ in range(10):
            policy.next_delay_ms()
        policy.reset()
        assert policy.current_ms == 10.0
        # The first post-reset draw is bounded by the base window again.
        assert policy.next_delay_ms() <= 30.0


class TestBudget:
    def test_attempts_and_exhaustion(self):
        policy = RetryPolicy(
            base_ms=10.0, cap_ms=100.0, max_attempts=3, seed=1
        )
        assert not policy.exhausted()
        for _ in range(3):
            policy.next_delay_ms()
        assert policy.attempts == 3
        assert policy.exhausted()
        policy.reset()
        assert not policy.exhausted()

    def test_unbounded_by_default(self):
        policy = RetryPolicy(base_ms=10.0, cap_ms=100.0, seed=1)
        for _ in range(50):
            policy.next_delay_ms()
        assert not policy.exhausted()
