"""Tests for the live deployment stack (:mod:`repro.net`)."""
