"""Live-cluster end-to-end: real sockets, chaos proxy, crash recovery.

Each test records a simulated trial and replays it against a real
3-region asyncio cluster (one server per region, a chaos link per
directed pair), then asserts the final state digests are byte-identical
to the simulator's.  ``time_scale`` compresses the trace clock so a
multi-second simulated trace replays in tens of milliseconds; the
``timeout`` marks are enforced by pytest-timeout in CI so a stuck gate
fails the job instead of hanging it.
"""

import asyncio

import pytest

from repro.check.explorer import PLAN_KINDS, build_trial
from repro.net.harness import run_live
from repro.net.oracle import record_trial
from repro.net.server import resume_position


def run(tmp_path, index, n_ops=25, time_scale=0.02, **kwargs):
    spec = build_trial("tournament", "Causal", 11, index, n_ops=n_ops)
    _, deployment = record_trial(spec)
    report = asyncio.run(
        run_live(
            deployment,
            str(tmp_path),
            time_scale=time_scale,
            deadline_s=kwargs.pop("deadline_s", 60.0),
            **kwargs,
        )
    )
    return deployment, report


@pytest.mark.timeout(90)
class TestLiveDigestEquality:
    def test_clean_plan(self, tmp_path):
        assert PLAN_KINDS[0] == "clean"
        _, report = run(tmp_path, index=0)
        assert report.ok, report.reason
        assert report.digest_match
        assert report.client["client.ops_acked"] > 0

    def test_lossy_plan(self, tmp_path):
        assert PLAN_KINDS[1] == "lossy"
        _, report = run(tmp_path, index=1)
        assert report.ok, report.reason
        assert report.digest_match

    def test_partition_plan(self, tmp_path):
        assert PLAN_KINDS[2] == "partition"
        _, report = run(tmp_path, index=2)
        assert report.ok, report.reason
        assert report.digest_match

    def test_partition_crash_plan_kills_and_recovers(self, tmp_path):
        """The tentpole: a replica is killed mid-run, restarts from its
        durable commit log, and the cluster still converges to the
        simulator's exact digests."""
        assert PLAN_KINDS[3] == "partition-crash"
        deployment, report = run(
            tmp_path, index=3, time_scale=0.05, deadline_s=90.0
        )
        assert report.crashes == 1
        assert report.ok, report.reason
        assert report.digest_match

    def test_heavy_plan(self, tmp_path):
        assert PLAN_KINDS[4] == "heavy"
        _, report = run(tmp_path, index=4, time_scale=0.05)
        assert report.ok, report.reason
        assert report.digest_match


@pytest.mark.timeout(90)
class TestLiveObservability:
    def test_server_stats_and_bench_payload(self, tmp_path):
        deployment, report = run(tmp_path, index=1)
        assert report.ok, report.reason
        for stats in report.servers.values():
            assert stats["net.schedule.completed"] == 1
            assert stats["net.records.applied"] > 0
        payload = report.bench(deployment, 0.02)
        assert payload["benchmark"] == "serve"
        assert payload["digest_match"] is True
        assert payload["throughput_ops_per_s"] > 0
        assert payload["n_ops"] == len(deployment["ops"])

    def test_chaos_proxy_reports_injected_faults(self, tmp_path):
        _, report = run(tmp_path, index=1)  # lossy: drop/dup/reorder
        assert report.ok, report.reason
        totals = {
            key: sum(link[key] for link in report.proxy.values())
            for key in ("delivered", "dropped", "duplicated", "reordered")
        }
        assert totals["delivered"] > 0
        # The lossy plan's probabilities are high enough that a run
        # exercising retransmission injects at least one fault.
        assert totals["dropped"] + totals["duplicated"] + totals["reordered"] > 0


@pytest.mark.timeout(90)
class TestFailureDiagnostics:
    def test_tampered_schedule_surfaces_engine_error(self, tmp_path):
        """A live commit that disagrees with the recorded schedule must
        be reported as an engine error, not a silent stall."""
        spec = build_trial("tournament", "Causal", 11, 0, n_ops=15)
        _, deployment = record_trial(spec)
        tampered = False
        for steps in deployment["schedules"].values():
            for step in steps:
                if step["kind"] == "op" and step["commits"]:
                    step["counter"] = 999
                    tampered = True
                    break
            if tampered:
                break
        assert tampered
        report = asyncio.run(
            run_live(
                deployment, str(tmp_path), time_scale=0.02, deadline_s=6.0
            )
        )
        assert not report.ok
        assert "engine error" in report.reason
        assert "schedule recorded 999" in report.reason


class TestResumePosition:
    def test_resume_scans_to_last_provable_step(self):
        from repro.crdts import AWSet
        from repro.store.registry import TypeRegistry
        from repro.store.replica import Replica

        registry = TypeRegistry()
        registry.register_prefix("", AWSet)
        replica = Replica("us-east", registry)
        txn = replica.begin()
        txn.update("s", lambda s: s.prepare_add("a"))
        txn.commit()  # own counter 1
        schedule = [
            {"kind": "setup", "commits": 1},
            {"kind": "op", "index": 0, "commits": False, "counter": None},
            {"kind": "apply", "origin": "eu-west", "counter": 1},
            {"kind": "op", "index": 1, "commits": True, "counter": 2},
        ]
        # Setup commit is durable; the non-committing op after it is
        # not provable but is safely re-executed, so resume lands on
        # the op following the last *provable* step.
        assert resume_position(schedule, replica) == 1

    def test_fresh_replica_resumes_at_zero(self):
        from repro.crdts import AWSet
        from repro.store.registry import TypeRegistry
        from repro.store.replica import Replica

        registry = TypeRegistry()
        registry.register_prefix("", AWSet)
        replica = Replica("us-east", registry)
        schedule = [{"kind": "setup", "commits": 1}]
        assert resume_position(schedule, replica) == 0
