"""Durable commit-log replay, including tail-damage tolerance.

The satellite requirement: a log whose *final* record is truncated at
any byte offset, or CRC-corrupt, replays to the intact prefix with a
warning and a counter bump -- and the file is repaired in place.
Damage followed by more bytes is not a crash signature and raises.
"""

import zlib

import pytest

from repro.crdts import AWSet
from repro.net import commitlog
from repro.obs import REGISTRY
from repro.store.registry import TypeRegistry
from repro.store.replica import Replica


def make_records(n):
    registry = TypeRegistry()
    registry.register_prefix("", AWSet)
    replica = Replica("A", registry)
    records = []
    for i in range(n):
        txn = replica.begin()
        txn.update("s", lambda s, i=i: s.prepare_add(f"e{i}"))
        records.append(txn.commit())
    return records


def write_log(path, records):
    with commitlog.CommitLog(path) as log:
        for record in records:
            log.append(record)


class TestRoundTrip:
    def test_replay_restores_records(self, tmp_path):
        path = tmp_path / "a.commitlog"
        records = make_records(5)
        write_log(path, records)
        assert commitlog.replay(path) == records

    def test_missing_file_is_empty(self, tmp_path):
        assert commitlog.replay(tmp_path / "nope.commitlog") == []

    def test_append_is_durable_per_record(self, tmp_path):
        path = tmp_path / "a.commitlog"
        records = make_records(3)
        log = commitlog.CommitLog(path)
        for i, record in enumerate(records):
            log.append(record)
            # Flushed before any ack: another process sees it already.
            assert commitlog.replay(path) == records[: i + 1]
        log.close()


class TestTailDamage:
    def test_truncation_at_every_byte_offset_of_last_record(self, tmp_path):
        records = make_records(3)
        ref = tmp_path / "ref.commitlog"
        write_log(ref, records)
        data = ref.read_bytes()
        prefix_end = len(
            commitlog._encode_record(records[0])
            + commitlog._encode_record(records[1])
        )
        counter = REGISTRY.counter("net.commitlog.tail_skipped")
        # From one byte of the last record up to one byte short of it
        # all being present (cutting at prefix_end exactly is a clean
        # two-record log, not tail damage).
        for cut in range(prefix_end + 1, len(data)):
            path = tmp_path / f"cut{cut}.commitlog"
            path.write_bytes(data[:cut])
            before = counter.value
            assert commitlog.replay(path) == records[:2]
            assert counter.value == before + 1
            # Repaired in place: the debris is gone, the prefix intact.
            assert path.read_bytes() == data[:prefix_end]
            assert commitlog.replay(path) == records[:2]

    def test_crc_corrupt_final_record_skipped(self, tmp_path, caplog):
        records = make_records(2)
        path = tmp_path / "a.commitlog"
        write_log(path, records)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with caplog.at_level("WARNING"):
            assert commitlog.replay(path) == records[:1]
        assert any(
            "skipping damaged final record" in message
            for message in caplog.messages
        )

    def test_append_after_tail_repair(self, tmp_path):
        records = make_records(3)
        path = tmp_path / "a.commitlog"
        write_log(path, records[:2])
        with open(path, "ab") as fh:
            fh.write(commitlog._encode_record(records[2])[:-3])
        assert commitlog.replay(path) == records[:2]
        with commitlog.CommitLog(path) as log:
            log.append(records[2])
        assert commitlog.replay(path) == records


class TestMidLogDamage:
    def test_corrupt_record_with_bytes_following_raises(self, tmp_path):
        records = make_records(3)
        path = tmp_path / "a.commitlog"
        write_log(path, records)
        first = commitlog._encode_record(records[0])
        data = bytearray(path.read_bytes())
        data[len(first) - 1] ^= 0xFF  # corrupt record 0's body
        path.write_bytes(bytes(data))
        with pytest.raises(commitlog.CommitLogError, match="not a tail"):
            commitlog.replay(path)

    def test_wrong_payload_type_raises(self, tmp_path):
        from repro.net import wire

        path = tmp_path / "a.commitlog"
        body = wire.dump_frame({"record": "not-a-record"})[4:]
        path.write_bytes(
            commitlog._HEADER.pack(len(body), zlib.crc32(body)) + body
        )
        with pytest.raises(commitlog.CommitLogError, match="CommitRecord"):
            commitlog.replay(path)


class TestSalvage:
    """Self-healing recovery mode: mid-log damage truncates, loudly.

    ``salvage=True`` trades history for availability -- a replica
    restarting into a mangled log keeps the intact prefix instead of
    refusing to start.  The dropped suffix is regenerated live (own
    commits re-execute under the schedule gate, remote records
    re-arrive via anti-entropy), which is only sound for a *prefix* of
    the application order -- hence the sequence-gap cut for sharded
    logs.
    """

    def damage_record(self, path, records, index):
        """CRC-corrupt record ``index`` in a log holding ``records``."""
        prefix = b"".join(
            commitlog._encode_record(record) for record in records[:index]
        )
        damaged = len(prefix) + len(
            commitlog._encode_record(records[index])
        )
        data = bytearray(path.read_bytes())
        data[damaged - 1] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_midlog_damage_keeps_intact_prefix(self, tmp_path):
        records = make_records(4)
        path = tmp_path / "a.commitlog"
        write_log(path, records)
        self.damage_record(path, records, 1)
        counter = REGISTRY.counter("net.commitlog.salvaged")
        before = counter.value
        assert commitlog.replay(path, salvage=True) == records[:1]
        assert counter.value == before + 1
        # Truncated in place: a plain replay now sees a clean log.
        assert commitlog.replay(path) == records[:1]

    def test_append_after_salvage(self, tmp_path):
        records = make_records(3)
        path = tmp_path / "a.commitlog"
        write_log(path, records)
        self.damage_record(path, records, 1)
        assert commitlog.replay(path, salvage=True) == records[:1]
        # Regeneration: re-appends of the salvaged-away records land
        # on a clean boundary and replay whole.
        with commitlog.CommitLog(path) as log:
            log.append(records[1])
            log.append(records[2])
        assert commitlog.replay(path) == records

    def test_without_salvage_midlog_damage_still_raises(self, tmp_path):
        records = make_records(3)
        path = tmp_path / "a.commitlog"
        write_log(path, records)
        self.damage_record(path, records, 0)
        with pytest.raises(commitlog.CommitLogError, match="not a tail"):
            commitlog.replay(path)

    def test_sharded_gap_cuts_merged_stream(self, tmp_path):
        """Damage in one shard file drops everything past the seq gap.

        Records beyond a gap may causally depend on the swallowed
        ones, so the merged replay must stop at the first hole even
        though later records survived intact in the *other* shard.
        """
        from repro.store.engine import HashRing

        ring = HashRing(2)
        by_shard: dict[int, str] = {}
        for i in range(100):
            key = f"key-{i}"
            by_shard.setdefault(ring.shard_of(key), key)
            if len(by_shard) == 2:
                break
        registry = TypeRegistry()
        registry.register_prefix("", AWSet)
        replica = Replica("A", registry)
        records = []
        log = commitlog.ShardedCommitLog(str(tmp_path), "A", shards=2)
        for seq in range(6):
            txn = replica.begin()
            txn.update(
                by_shard[seq % 2], lambda s, seq=seq: s.prepare_add(f"e{seq}")
            )
            record = txn.commit()
            records.append(record)
            log.append(record)
        log.close()
        # Shard 0 holds seqs 0,2,4: kill seq 2 (mid-file, CRC damage).
        shard0 = tmp_path / "A-shard00.commitlog"
        frames = commitlog.read_frames(shard0)
        data = bytearray(shard0.read_bytes())
        data[frames[1][1] - 1] ^= 0xFF  # last byte of frame 1's body
        shard0.write_bytes(bytes(data))
        counter = REGISTRY.counter("net.commitlog.salvaged")
        before = counter.value
        fresh = commitlog.ShardedCommitLog(str(tmp_path), "A", shards=2)
        # Seqs 0 and 1 survive; 3 and 5 are intact in shard 1 but sit
        # past the gap left by 2 and 4, so they are dropped too.
        assert fresh.replay(salvage=True) == records[:2]
        assert counter.value > before
        # The sequence counter resumed past the cut: a re-append of
        # the regenerated records restores the full ordered stream.
        for record in records[2:]:
            fresh.append(record)
        fresh.close()
        reread = commitlog.ShardedCommitLog(str(tmp_path), "A", shards=2)
        assert reread.replay(salvage=True) == records
        reread.close()
