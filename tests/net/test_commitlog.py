"""Durable commit-log replay, including tail-damage tolerance.

The satellite requirement: a log whose *final* record is truncated at
any byte offset, or CRC-corrupt, replays to the intact prefix with a
warning and a counter bump -- and the file is repaired in place.
Damage followed by more bytes is not a crash signature and raises.
"""

import zlib

import pytest

from repro.crdts import AWSet
from repro.net import commitlog
from repro.obs import REGISTRY
from repro.store.registry import TypeRegistry
from repro.store.replica import Replica


def make_records(n):
    registry = TypeRegistry()
    registry.register_prefix("", AWSet)
    replica = Replica("A", registry)
    records = []
    for i in range(n):
        txn = replica.begin()
        txn.update("s", lambda s, i=i: s.prepare_add(f"e{i}"))
        records.append(txn.commit())
    return records


def write_log(path, records):
    with commitlog.CommitLog(path) as log:
        for record in records:
            log.append(record)


class TestRoundTrip:
    def test_replay_restores_records(self, tmp_path):
        path = tmp_path / "a.commitlog"
        records = make_records(5)
        write_log(path, records)
        assert commitlog.replay(path) == records

    def test_missing_file_is_empty(self, tmp_path):
        assert commitlog.replay(tmp_path / "nope.commitlog") == []

    def test_append_is_durable_per_record(self, tmp_path):
        path = tmp_path / "a.commitlog"
        records = make_records(3)
        log = commitlog.CommitLog(path)
        for i, record in enumerate(records):
            log.append(record)
            # Flushed before any ack: another process sees it already.
            assert commitlog.replay(path) == records[: i + 1]
        log.close()


class TestTailDamage:
    def test_truncation_at_every_byte_offset_of_last_record(self, tmp_path):
        records = make_records(3)
        ref = tmp_path / "ref.commitlog"
        write_log(ref, records)
        data = ref.read_bytes()
        prefix_end = len(
            commitlog._encode_record(records[0])
            + commitlog._encode_record(records[1])
        )
        counter = REGISTRY.counter("net.commitlog.tail_skipped")
        # From one byte of the last record up to one byte short of it
        # all being present (cutting at prefix_end exactly is a clean
        # two-record log, not tail damage).
        for cut in range(prefix_end + 1, len(data)):
            path = tmp_path / f"cut{cut}.commitlog"
            path.write_bytes(data[:cut])
            before = counter.value
            assert commitlog.replay(path) == records[:2]
            assert counter.value == before + 1
            # Repaired in place: the debris is gone, the prefix intact.
            assert path.read_bytes() == data[:prefix_end]
            assert commitlog.replay(path) == records[:2]

    def test_crc_corrupt_final_record_skipped(self, tmp_path, caplog):
        records = make_records(2)
        path = tmp_path / "a.commitlog"
        write_log(path, records)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with caplog.at_level("WARNING"):
            assert commitlog.replay(path) == records[:1]
        assert any(
            "skipping damaged final record" in message
            for message in caplog.messages
        )

    def test_append_after_tail_repair(self, tmp_path):
        records = make_records(3)
        path = tmp_path / "a.commitlog"
        write_log(path, records[:2])
        with open(path, "ab") as fh:
            fh.write(commitlog._encode_record(records[2])[:-3])
        assert commitlog.replay(path) == records[:2]
        with commitlog.CommitLog(path) as log:
            log.append(records[2])
        assert commitlog.replay(path) == records


class TestMidLogDamage:
    def test_corrupt_record_with_bytes_following_raises(self, tmp_path):
        records = make_records(3)
        path = tmp_path / "a.commitlog"
        write_log(path, records)
        first = commitlog._encode_record(records[0])
        data = bytearray(path.read_bytes())
        data[len(first) - 1] ^= 0xFF  # corrupt record 0's body
        path.write_bytes(bytes(data))
        with pytest.raises(commitlog.CommitLogError, match="not a tail"):
            commitlog.replay(path)

    def test_wrong_payload_type_raises(self, tmp_path):
        from repro.net import wire

        path = tmp_path / "a.commitlog"
        body = wire.dump_frame({"record": "not-a-record"})[4:]
        path.write_bytes(
            commitlog._HEADER.pack(len(body), zlib.crc32(body)) + body
        )
        with pytest.raises(commitlog.CommitLogError, match="CommitRecord"):
            commitlog.replay(path)
