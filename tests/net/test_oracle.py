"""The trial recorder and the deployment spec it produces."""

import pytest

from repro.check.explorer import build_trial
from repro.net.oracle import (
    ORACLE_SCHEMA,
    OracleError,
    load_deployment,
    record_trial,
    write_deployment,
)


@pytest.fixture(scope="module")
def recorded():
    spec = build_trial("tournament", "Causal", 11, 0, n_ops=20)
    result, deployment = record_trial(spec)
    return spec, result, deployment


class TestRecording:
    def test_deployment_shape(self, recorded):
        spec, result, deployment = recorded
        assert deployment["schema"] == ORACLE_SCHEMA
        assert set(deployment["schedules"]) == set(spec.regions)
        assert deployment["digests"] == dict(result.digests)
        assert len(deployment["ops"]) == len(spec.ops)

    def test_recorder_does_not_perturb_the_simulation(self, recorded):
        spec, result, _ = recorded
        from repro.check.harness import run_trial

        bare = run_trial(spec)
        assert bare.digests == result.digests
        assert bare.fingerprint == result.fingerprint

    def test_recording_is_deterministic(self, recorded):
        spec, _, deployment = recorded
        _, again = record_trial(spec)
        assert again == deployment

    def test_schedule_steps_are_well_formed(self, recorded):
        spec, _, deployment = recorded
        for region, steps in deployment["schedules"].items():
            for position, step in enumerate(steps):
                if step["kind"] == "setup":
                    assert position == 0  # setup runs before everything
                elif step["kind"] == "apply":
                    assert step["origin"] != region
                    assert step["counter"] >= 1
                else:
                    assert step["kind"] == "op"
                    assert (step["counter"] is not None) == step["commits"]

    def test_commit_counters_are_monotone_per_replica(self, recorded):
        _, _, deployment = recorded
        for region, steps in deployment["schedules"].items():
            own = 0
            for step in steps:
                if step["kind"] == "setup":
                    own += step["commits"]
                elif step["kind"] == "op" and step["commits"]:
                    own += 1
                    assert step["counter"] == own

    def test_only_committed_ops_are_client_sent(self, recorded):
        _, _, deployment = recorded
        committed = {
            step["index"]
            for steps in deployment["schedules"].values()
            for step in steps
            if step["kind"] == "op" and step["commits"]
        }
        for op in deployment["ops"]:
            assert op["send"] == (op["index"] in committed)

    def test_rejects_strong_configs(self):
        spec = build_trial("tournament", "Strong", 11, 0, n_ops=5)
        with pytest.raises(OracleError, match="causal-mode"):
            record_trial(spec)


class TestRoundTrip:
    def test_write_and_load(self, tmp_path, recorded):
        _, _, deployment = recorded
        path = tmp_path / "deployment.json"
        write_deployment(path, deployment)
        assert load_deployment(path) == deployment

    def test_load_rejects_unknown_schema(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(OracleError, match="schema"):
            load_deployment(path)
