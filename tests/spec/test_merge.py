"""Multi-application spec merging tests (§5.1.4)."""

import pytest

from repro.analysis import ConflictChecker, run_ipa
from repro.errors import SpecError
from repro.spec import SpecBuilder
from repro.spec.merge import merge_specs


def reader_app():
    """An application that only enrols players."""
    b = SpecBuilder("enroller")
    b.predicate("player", "Player")
    b.predicate("tournament", "Tournament")
    b.predicate("enrolled", "Player", "Tournament")
    b.invariant(
        "forall(Player: p, Tournament: t) :- "
        "enrolled(p, t) => player(p) and tournament(t)"
    )
    b.operation(
        "enroll", "Player: p, Tournament: t", true=["enrolled(p, t)"]
    )
    return b.build()


def admin_app():
    """A separate admin application that removes tournaments."""
    b = SpecBuilder("admin")
    b.predicate("tournament", "Tournament")
    b.operation("add_tourn", "Tournament: t", true=["tournament(t)"])
    b.operation("rem_tourn", "Tournament: t", false=["tournament(t)"])
    return b.build()


class TestMergeSpecs:
    def test_cross_application_conflict_found(self):
        """Neither app conflicts alone; together they do (the paper's
        motivation for a single combined specification)."""
        enroller, admin = reader_app(), admin_app()
        assert ConflictChecker(enroller).find_conflicts() == []
        assert ConflictChecker(admin).find_conflicts() == []
        combined = merge_specs("shared-db", enroller, admin)
        conflicts = ConflictChecker(combined).find_conflicts()
        pairs = {frozenset(w.pair) for w in conflicts}
        assert frozenset(("enroll", "rem_tourn")) in pairs

    def test_combined_spec_repairable(self):
        combined = merge_specs("shared-db", reader_app(), admin_app())
        result = run_ipa(combined)
        assert result.is_invariant_preserving

    def test_shared_predicates_unified(self):
        combined = merge_specs("shared-db", reader_app(), admin_app())
        assert combined.schema.pred("tournament").arity == 1
        assert len(combined.schema.predicates) == 3

    def test_colliding_operation_names_qualified(self):
        a, b = admin_app(), admin_app()
        b.schema.name = "admin2"
        combined = merge_specs("shared-db", a, b)
        assert "admin.rem_tourn" in combined.operations
        assert "admin2.rem_tourn" in combined.operations

    def test_signature_mismatch_rejected(self):
        a = reader_app()
        b = SpecBuilder("odd")
        b.predicate("enrolled", "Player")  # wrong arity
        with pytest.raises(SpecError, match="different signatures"):
            merge_specs("shared-db", a, b.build())

    def test_contradictory_rules_rejected(self):
        a = SpecBuilder("a")
        a.predicate("flag", "S")
        spec_a = a.build(rules={"flag": "add-wins"})
        b = SpecBuilder("b")
        b.predicate("flag", "S")
        spec_b = b.build(rules={"flag": "rem-wins"})
        with pytest.raises(SpecError, match="contradictory"):
            merge_specs("shared-db", spec_a, spec_b)

    def test_conflicting_param_values_rejected(self):
        a = SpecBuilder("a")
        a.predicate("e", "S", "T")
        a.parameter("Cap", 3)
        b = SpecBuilder("b")
        b.predicate("f", "S")
        b.parameter("Cap", 5)
        with pytest.raises(SpecError, match="conflicting values"):
            merge_specs("shared-db", a.build(), b.build())

    def test_duplicate_invariants_deduped(self):
        a, b = reader_app(), reader_app()
        b.schema.name = "enroller2"
        combined = merge_specs("shared-db", a, b)
        assert len(combined.invariants) == 1

    def test_empty_merge_rejected(self):
        with pytest.raises(SpecError):
            merge_specs("nothing")
