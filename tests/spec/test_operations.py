"""Operation model tests."""

import pytest

from repro.errors import SpecError
from repro.logic.ast import Const, PredicateDecl, Sort, Var, Wildcard
from repro.spec.effects import BoolEffect
from repro.spec.operations import Operation

P = Sort("Player")
T = Sort("Tournament")
enrolled = PredicateDecl("enrolled", (P, T))
tournament = PredicateDecl("tournament", (T,))
p = Var("p", P)
t = Var("t", T)


def enroll_op():
    return Operation(
        name="enroll",
        params=(p, t),
        effects=(BoolEffect(enrolled, (p, t), value=True),),
    )


class TestConstruction:
    def test_duplicate_params_rejected(self):
        with pytest.raises(SpecError):
            Operation("bad", (p, p), ())

    def test_unknown_param_in_effect_rejected(self):
        q = Var("q", P)
        with pytest.raises(SpecError, match="unknown parameter"):
            Operation(
                "bad", (p,),
                (BoolEffect(enrolled, (q, Wildcard(T)), value=False),),
            )

    def test_wildcards_allowed_without_params(self):
        op = Operation(
            "clear", (t,),
            (BoolEffect(enrolled, (Wildcard(P), t), value=False),),
        )
        assert op.effects[0].has_wildcard


class TestAugmentation:
    def test_with_extra_effects_appends(self):
        op = enroll_op()
        extra = BoolEffect(tournament, (t,), value=True)
        modified = op.with_extra_effects([extra])
        assert modified.effects == op.effects + (extra,)
        assert modified.base == "enroll"
        assert modified.original_name == "enroll"

    def test_duplicate_extras_skipped(self):
        op = enroll_op()
        existing = op.effects[0]
        modified = op.with_extra_effects([existing])
        assert modified.effects == op.effects

    def test_base_chains_to_original(self):
        op = enroll_op()
        first = op.with_extra_effects(
            [BoolEffect(tournament, (t,), value=True)]
        )
        second = first.with_extra_effects([])
        assert second.original_name == "enroll"


class TestInstantiate:
    def test_binds_all_params(self):
        op = enroll_op()
        p0, t0 = Const("p0", P), Const("t0", T)
        effects = op.instantiate({p: p0, t: t0})
        assert effects[0].args == (p0, t0)

    def test_missing_binding_rejected(self):
        op = enroll_op()
        with pytest.raises(SpecError, match="no binding"):
            op.instantiate({p: Const("p0", P)})


class TestQueries:
    def test_touched_predicates(self):
        op = enroll_op().with_extra_effects(
            [BoolEffect(tournament, (t,), value=True)]
        )
        assert op.touched_predicates() == {"enrolled", "tournament"}

    def test_describe_lists_effects(self):
        text = enroll_op().describe()
        assert "enroll(Player: p, Tournament: t)" in text
        assert "enrolled(p, t) = true" in text

    def test_operations_hashable(self):
        assert len({enroll_op(), enroll_op()}) == 1
