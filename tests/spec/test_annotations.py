"""SpecBuilder front-end tests (the paper's annotation syntax)."""

import pytest

from repro.errors import ParseError, SpecError
from repro.logic.ast import Wildcard
from repro.spec import SpecBuilder
from repro.spec.effects import BoolEffect, ConvergencePolicy, NumEffect


def builder():
    b = SpecBuilder("app")
    b.predicate("player", "Player")
    b.predicate("tournament", "Tournament")
    b.predicate("enrolled", "Player", "Tournament")
    b.predicate("stock", "Tournament", numeric=True)
    return b


class TestPredicatesAndSorts:
    def test_sorts_created_on_demand(self):
        b = builder()
        assert set(b.schema.sorts) == {"Player", "Tournament"}

    def test_duplicate_predicate_rejected(self):
        b = builder()
        with pytest.raises(SpecError):
            b.predicate("player", "Player")

    def test_parameter(self):
        b = builder()
        b.parameter("Capacity", 5)
        assert b.schema.params == {"Capacity": 5}


class TestOperations:
    def test_true_false_effects(self):
        b = builder()
        op = b.operation(
            "swap", "Player: p, Tournament: t",
            true=["enrolled(p, t)"], false=["tournament(t)"],
        )
        assert len(op.effects) == 2
        assert op.effects[0].value is True
        assert op.effects[1].value is False

    def test_touch_effects(self):
        b = builder()
        op = b.operation(
            "enroll", "Player: p, Tournament: t",
            touch=["tournament(t)"],
        )
        assert op.effects[0].touch

    def test_wildcard_argument(self):
        b = builder()
        op = b.operation(
            "rem_tourn", "Tournament: t", false=["enrolled(*, t)"]
        )
        effect = op.effects[0]
        assert isinstance(effect.args[0], Wildcard)
        assert effect.args[0].sort.name == "Player"

    def test_numeric_effects_with_amounts(self):
        b = builder()
        op = b.operation(
            "restock", "Tournament: t",
            incr=["stock(t) 10"], decr=["stock(t)"],
        )
        assert op.effects[0].delta == 10
        assert op.effects[1].delta == -1

    def test_shared_sort_params(self):
        b = builder()
        op = b.operation("match", "Player: p, q, Tournament: t")
        assert [v.sort.name for v in op.params] == [
            "Player", "Player", "Tournament",
        ]

    def test_unknown_param_in_effect(self):
        b = builder()
        with pytest.raises(ParseError, match="unknown parameter"):
            b.operation("bad", "Player: p", true=["enrolled(p, t)"])

    def test_wrong_arity_effect(self):
        b = builder()
        with pytest.raises(ParseError, match="expects"):
            b.operation("bad", "Player: p", true=["enrolled(p)"])

    def test_malformed_effect(self):
        b = builder()
        with pytest.raises(ParseError, match="malformed"):
            b.operation("bad", "Player: p", true=["enrolled p"])

    def test_param_without_sort_rejected(self):
        b = builder()
        with pytest.raises(SpecError, match="no sort"):
            b.operation("bad", "p", true=["player(p)"])


class TestBuild:
    def test_rules_installed(self):
        b = builder()
        spec = b.build(rules={"enrolled": "rem-wins"})
        assert spec.rules.policy("enrolled") is ConvergencePolicy.REM_WINS
        assert spec.rules.policy("player") is ConvergencePolicy.ADD_WINS

    def test_rule_for_unknown_predicate_rejected(self):
        b = builder()
        with pytest.raises(SpecError, match="unknown predicate"):
            b.build(rules={"ghost": "add-wins"})

    def test_invariant_category_annotation(self):
        b = builder()
        inv = b.invariant("true", name="ids", category="unique-id")
        spec = b.build()
        assert spec.invariants[0].category == "unique-id"
        assert inv.name == "ids"

    def test_invariant_source_normalised(self):
        b = builder()
        inv = b.invariant(
            "forall(Player: p, Tournament: t) :-\n"
            "    enrolled(p, t) => player(p)"
        )
        assert "\n" not in inv.source

    def test_describe_round_trip(self):
        b = builder()
        b.invariant(
            "forall(Player: p, Tournament: t) :- enrolled(p, t) => player(p)"
        )
        b.operation("add_player", "Player: p", true=["player(p)"])
        spec = b.build()
        text = spec.describe()
        assert "@Inv" in text
        assert "add_player(Player: p)" in text
