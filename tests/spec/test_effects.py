"""Effect and convergence-rule tests."""

import pytest

from repro.errors import SpecError
from repro.logic.ast import PredicateDecl, Sort, Var, Wildcard
from repro.spec.effects import (
    BoolEffect,
    ConvergencePolicy,
    ConvergenceRules,
    NumEffect,
)

P = Sort("Player")
T = Sort("Tournament")
enrolled = PredicateDecl("enrolled", (P, T))
tournament = PredicateDecl("tournament", (T,))
stock = PredicateDecl("stock", (T,), numeric=True)
p = Var("p", P)
t = Var("t", T)


class TestBoolEffect:
    def test_construction(self):
        effect = BoolEffect(enrolled, (p, t), value=True)
        assert not effect.has_wildcard
        assert str(effect) == "enrolled(p, t) = true"

    def test_wildcard(self):
        effect = BoolEffect(enrolled, (Wildcard(P), t), value=False)
        assert effect.has_wildcard
        assert str(effect) == "enrolled(*, t) = false"

    def test_touch_rendering(self):
        effect = BoolEffect(tournament, (t,), value=True, touch=True)
        assert str(effect) == "tournament(t) = touch"

    def test_touch_must_be_true(self):
        with pytest.raises(SpecError):
            BoolEffect(tournament, (t,), value=False, touch=True)

    def test_numeric_pred_rejected(self):
        with pytest.raises(SpecError):
            BoolEffect(stock, (t,), value=True)

    def test_rename(self):
        from repro.logic.ast import Const

        c = Const("t0", T)
        effect = BoolEffect(enrolled, (p, t), value=True)
        renamed = effect.rename({t: c})
        assert renamed.args == (p, c)


class TestOpposes:
    def test_same_pred_opposing_values(self):
        add = BoolEffect(tournament, (t,), value=True)
        rem = BoolEffect(tournament, (t,), value=False)
        assert add.opposes(rem)
        assert rem.opposes(add)

    def test_same_value_does_not_oppose(self):
        a1 = BoolEffect(tournament, (t,), value=True)
        a2 = BoolEffect(tournament, (t,), value=True)
        assert not a1.opposes(a2)

    def test_different_preds_do_not_oppose(self):
        add = BoolEffect(tournament, (t,), value=True)
        rem = BoolEffect(enrolled, (p, t), value=False)
        assert not add.opposes(rem)

    def test_wildcard_overlaps(self):
        clear = BoolEffect(enrolled, (Wildcard(P), t), value=False)
        add = BoolEffect(enrolled, (p, t), value=True)
        assert clear.opposes(add)

    def test_distinct_constants_do_not_oppose(self):
        from repro.logic.ast import Const

        t0, t1 = Const("t0", T), Const("t1", T)
        add = BoolEffect(tournament, (t0,), value=True)
        rem = BoolEffect(tournament, (t1,), value=False)
        assert not add.opposes(rem)

    def test_variables_may_alias(self):
        t2 = Var("t2", T)
        add = BoolEffect(tournament, (t,), value=True)
        rem = BoolEffect(tournament, (t2,), value=False)
        assert add.opposes(rem)

    def test_num_effect_never_opposes(self):
        incr = NumEffect(stock, (t,), delta=1)
        decr = NumEffect(stock, (t,), delta=-1)
        assert not incr.opposes(decr)


class TestNumEffect:
    def test_construction(self):
        effect = NumEffect(stock, (t,), delta=-2)
        assert str(effect) == "stock(t) -2"

    def test_positive_rendering(self):
        assert str(NumEffect(stock, (t,), delta=3)) == "stock(t) +3"

    def test_zero_delta_rejected(self):
        with pytest.raises(SpecError):
            NumEffect(stock, (t,), delta=0)

    def test_boolean_pred_rejected(self):
        with pytest.raises(SpecError):
            NumEffect(tournament, (t,), delta=1)


class TestConvergenceRules:
    def test_default_policy(self):
        rules = ConvergenceRules()
        assert rules.policy(tournament) is ConvergencePolicy.ADD_WINS
        assert rules.merged_value(tournament) is True

    def test_override(self):
        rules = ConvergenceRules()
        rules.set("enrolled", ConvergencePolicy.REM_WINS)
        assert rules.merged_value("enrolled") is False

    def test_lww_has_no_winner(self):
        rules = ConvergenceRules(default=ConvergencePolicy.LWW)
        assert rules.merged_value(tournament) is None

    def test_from_mapping_with_strings(self):
        rules = ConvergenceRules.from_mapping({"enrolled": "rem-wins"})
        assert rules.policy("enrolled") is ConvergencePolicy.REM_WINS

    def test_copy_isolated(self):
        rules = ConvergenceRules()
        clone = rules.copy()
        clone.set("enrolled", ConvergencePolicy.REM_WINS)
        assert rules.policy("enrolled") is ConvergencePolicy.ADD_WINS
