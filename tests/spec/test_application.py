"""ApplicationSpec container tests."""

import pytest

from repro.errors import SpecError
from repro.logic.ast import And, TrueF
from repro.spec import SpecBuilder
from repro.spec.effects import BoolEffect


def spec():
    b = SpecBuilder("app")
    b.predicate("player", "Player")
    b.predicate("tournament", "Tournament")
    b.invariant("forall(Player: p) :- player(p) => player(p)")
    b.invariant("forall(Tournament: t) :- tournament(t) => tournament(t)")
    b.operation("add_player", "Player: p", true=["player(p)"])
    b.operation("add_tourn", "Tournament: t", true=["tournament(t)"])
    return b.build()


class TestApplicationSpec:
    def test_invariant_formula_conjunction(self):
        formula = spec().invariant_formula()
        assert isinstance(formula, And)
        assert len(formula.args) == 2

    def test_empty_invariants_is_true(self):
        b = SpecBuilder("empty")
        assert isinstance(b.build().invariant_formula(), TrueF)

    def test_operation_lookup(self):
        s = spec()
        assert s.operation("add_player").name == "add_player"
        with pytest.raises(SpecError):
            s.operation("ghost")

    def test_add_duplicate_operation_rejected(self):
        s = spec()
        with pytest.raises(SpecError):
            s.add_operation(s.operation("add_player"))

    def test_replace_operation(self):
        s = spec()
        original = s.operation("add_player")
        extra = BoolEffect(
            s.schema.pred("player"), (original.params[0],), value=True,
            touch=True,
        )
        modified = original.with_extra_effects([extra])
        s.replace_operation("add_player", modified)
        replaced = s.operation("add_player")
        assert replaced.original_name == "add_player"
        assert extra in replaced.effects

    def test_replace_unknown_rejected(self):
        with pytest.raises(SpecError):
            spec().replace_operation("ghost", spec().operation("add_player"))

    def test_copy_isolates_operations_and_rules(self):
        s = spec()
        clone = s.copy()
        clone.replace_operation(
            "add_player", s.operation("add_player").with_extra_effects([])
        )
        from repro.spec.effects import ConvergencePolicy

        clone.rules.set("player", ConvergencePolicy.REM_WINS)
        assert s.rules.policy("player") is ConvergencePolicy.ADD_WINS
        assert s.operation("add_player").base is None
