"""Spec workload adapter tests."""

import pytest

from repro.analysis import run_ipa
from repro.runtime import (
    SpecExecutor,
    SpecWorkload,
    entity_pool_sampler,
    registry_for_spec,
)
from repro.sim import Simulator
from repro.sim.latency import REGIONS
from repro.sim.runner import run_closed_loop
from repro.store import Cluster

from tests.conftest import make_mini_tournament_spec

PLAYERS = [f"p{i}" for i in range(4)]
TOURNAMENTS = ["t1", "t2"]


def patched_executor():
    spec = make_mini_tournament_spec()
    result = run_ipa(spec)
    sim = Simulator()
    cluster = Cluster(sim, registry_for_spec(result.modified))
    executor = SpecExecutor(
        result.modified, cluster, original_spec=result.original
    )
    for player in PLAYERS:
        executor.execute(REGIONS[0], "add_player", {"p": player})
    for tournament in TOURNAMENTS:
        executor.execute(REGIONS[0], "add_tourn", {"t": tournament})
    sim.run(until=sim.now + 2_000.0)
    return sim, cluster, executor


def samplers():
    both = entity_pool_sampler({"p": PLAYERS, "t": TOURNAMENTS})
    return {
        "enroll": both,
        "rem_tourn": entity_pool_sampler({"t": TOURNAMENTS}),
        "add_player": entity_pool_sampler({"p": PLAYERS}),
        "add_tourn": entity_pool_sampler({"t": TOURNAMENTS}),
    }


class TestSpecWorkload:
    def test_closed_loop_run_stays_invariant_valid(self):
        sim, cluster, executor = patched_executor()
        workload = SpecWorkload(
            executor,
            weights={
                "enroll": 50.0, "add_player": 20.0,
                "add_tourn": 20.0, "rem_tourn": 10.0,
            },
            samplers=samplers(),
        )
        result = run_closed_loop(
            sim,
            workload.issue,
            {region: 2 for region in REGIONS},
            duration_ms=2_000.0,
            warmup_ms=200.0,
        )
        assert result.metrics.total_operations() > 0
        cluster.settle()
        for region in REGIONS:
            assert executor.audit(region) == []

    def test_rejected_operations_labelled(self):
        sim, cluster, executor = patched_executor()
        workload = SpecWorkload(
            executor,
            weights={"enroll": 100.0},
            samplers={
                # ghost tournaments: every enrol is refused at origin.
                "enroll": entity_pool_sampler(
                    {"p": PLAYERS, "t": ["ghost"]}
                ),
            },
        )
        result = run_closed_loop(
            sim, workload.issue, {REGIONS[0]: 1},
            duration_ms=500.0, warmup_ms=0.0,
        )
        assert result.stats("enroll_rejected").count > 0

    def test_unknown_operation_weight_rejected(self):
        _sim, _cluster, executor = patched_executor()
        with pytest.raises(ValueError, match="unknown operations"):
            SpecWorkload(executor, {"ghost": 1.0}, {})

    def test_missing_sampler_rejected(self):
        _sim, _cluster, executor = patched_executor()
        with pytest.raises(ValueError, match="without argument samplers"):
            SpecWorkload(executor, {"enroll": 1.0}, {})
