"""The precondition-guard subtlety: patched ops keep original guards.

IPA's extra effects deliberately weaken the *patched* operation's own
weakest precondition (``enroll + tournament(t)=true`` could create a
tournament out of thin air).  The application code, however, still
performs the ORIGINAL check -- §2.2: "the code of the operation
verifies that the local database state satisfies the operation
preconditions".  The executor therefore guards with the original
operation when ``original_spec`` is provided.
"""

from repro.analysis import run_ipa
from repro.runtime import SpecExecutor, registry_for_spec
from repro.sim import Simulator
from repro.sim.latency import REGIONS, US_EAST
from repro.store import Cluster

from tests.conftest import make_mini_tournament_spec


def settle(sim):
    sim.run(until=sim.now + 2_000.0)


def build(original_spec=None):
    spec = make_mini_tournament_spec()
    result = run_ipa(spec)
    sim = Simulator()
    cluster = Cluster(sim, registry_for_spec(result.modified))
    executor = SpecExecutor(
        result.modified,
        cluster,
        original_spec=result.original if original_spec else None,
    )
    executor.execute(US_EAST, "add_player", {"p": "p1"})
    settle(sim)
    return sim, cluster, executor


class TestGuardSemantics:
    def test_original_guard_rejects_ghost_tournament(self):
        sim, _cluster, executor = build(original_spec=True)
        done = []
        executor.execute(
            US_EAST, "enroll", {"p": "p1", "t": "ghost"}, done.append
        )
        settle(sim)
        assert done == ["enroll_rejected"]

    def test_without_original_the_patched_guard_is_weaker(self):
        """Documented behaviour: guarding with the patched op lets the
        extra effect satisfy the invariant, so the ghost enrol runs
        (and the created state is still I-valid)."""
        sim, cluster, executor = build(original_spec=False)
        done = []
        executor.execute(
            US_EAST, "enroll", {"p": "p1", "t": "ghost"}, done.append
        )
        settle(sim)
        assert done == ["enroll"]
        for region in REGIONS:
            assert executor.audit(region) == []

    def test_valid_enrol_allowed_under_original_guard(self):
        sim, _cluster, executor = build(original_spec=True)
        done = []
        executor.execute(US_EAST, "add_tourn", {"t": "t1"}, done.append)
        settle(sim)
        executor.execute(
            US_EAST, "enroll", {"p": "p1", "t": "t1"}, done.append
        )
        settle(sim)
        assert done == ["add_tourn", "enroll"]
