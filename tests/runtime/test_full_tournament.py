"""Full-spec end-to-end: the complete Figure 1 Tournament through the
whole pipeline -- analysis, mechanical execution, audit.

This is the repository's most complete single test: every invariant of
the paper's running example, every operation, the analysis's own
repairs (not hand-coded ones), random concurrent load, and the audits
running the same first-order formulas the solver reasoned about.
"""

import random

import pytest

from repro.analysis import run_ipa
from repro.apps.tournament import tournament_spec
from repro.runtime import SpecExecutor, registry_for_spec
from repro.sim import Simulator
from repro.sim.latency import REGIONS
from repro.store import Cluster

PLAYERS = [f"p{i}" for i in range(5)]
TOURNAMENTS = ["t1", "t2"]


@pytest.fixture(scope="module")
def analysis():
    """The (expensive) full analysis, shared across this module."""
    spec = tournament_spec(capacity=3)
    result = run_ipa(spec)
    assert result.is_invariant_preserving
    return result


def build_runtime(result):
    sim = Simulator()
    cluster = Cluster(sim, registry_for_spec(result.modified))
    executor = SpecExecutor(
        result.modified,
        cluster,
        compensations=result.compensations,
        original_spec=result.original,
    )
    for player in PLAYERS:
        executor.execute(REGIONS[0], "add_player", {"p": player})
    for tournament in TOURNAMENTS:
        executor.execute(REGIONS[0], "add_tourn", {"t": tournament})
    sim.run(until=sim.now + 2_000.0)
    return sim, cluster, executor


def random_op(rng):
    op = rng.choice(
        [
            "enroll", "enroll", "disenroll", "begin_tourn",
            "finish_tourn", "do_match", "rem_tourn", "add_tourn",
        ]
    )
    args = {}
    if op in ("enroll", "disenroll"):
        args = {"p": rng.choice(PLAYERS), "t": rng.choice(TOURNAMENTS)}
    elif op == "do_match":
        args = {
            "p": rng.choice(PLAYERS),
            "q": rng.choice(PLAYERS),
            "t": rng.choice(TOURNAMENTS),
        }
    else:
        args = {"t": rng.choice(TOURNAMENTS)}
    return op, args


class TestFullTournamentPipeline:
    def test_analysis_output_matches_paper(self, analysis):
        """The repairs are the paper's (Figures 2-3, §3.4)."""
        patched = analysis.modified
        enroll = patched.operation("enroll")
        effects = {str(e) for e in enroll.effects}
        assert "tournament(t) = true" in effects  # Figure 2b
        rem = patched.operation("rem_tourn")
        effects = {str(e) for e in rem.effects}
        assert "enrolled(*, t) = false" in effects  # Figure 2c
        assert any(c.kind == "trim-collection" for c in analysis.compensations)

    @pytest.mark.parametrize("seed", [3, 17, 42])
    def test_random_concurrent_load_stays_valid(self, analysis, seed):
        rng = random.Random(seed)
        sim, cluster, executor = build_runtime(analysis)
        for _ in range(25):
            op, args = random_op(rng)
            region = rng.choice(REGIONS)
            sim.at(
                sim.now + rng.uniform(0, 150),
                lambda r=region, o=op, a=args: executor.execute(r, o, a),
            )
        sim.run(until=sim.now + 5_000.0)
        assert cluster.converged()
        # A compensating read repairs any capacity oversell the merge
        # produced; every other invariant must already hold.
        executor.apply_compensations(REGIONS[0])
        sim.run(until=sim.now + 3_000.0)
        for region in REGIONS:
            assert executor.audit(region) == [], seed

    def test_figure2_race_through_full_spec(self, analysis):
        sim, cluster, executor = build_runtime(analysis)
        executor.execute(
            REGIONS[1], "enroll", {"p": "p0", "t": "t1"}
        )
        executor.execute(REGIONS[2], "rem_tourn", {"t": "t1"})
        sim.run(until=sim.now + 3_000.0)
        assert cluster.converged()
        for region in REGIONS:
            assert executor.audit(region) == []
