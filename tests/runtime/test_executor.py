"""Generic spec-executor unit tests."""

import pytest

from repro.analysis import run_ipa
from repro.crdts import AWSet, PNCounter, RWSet
from repro.errors import SpecError
from repro.runtime import SpecExecutor, materialize, registry_for_spec
from repro.runtime.state import counter_key, domain_of_values, predicate_key
from repro.sim import Simulator
from repro.spec import SpecBuilder
from repro.store import Cluster

from tests.conftest import make_mini_tournament_spec


def build(spec, compensations=()):
    sim = Simulator()
    cluster = Cluster(sim, registry_for_spec(spec))
    executor = SpecExecutor(spec, cluster, compensations=compensations)
    return sim, cluster, executor


def settle(sim):
    sim.run(until=sim.now + 2_000.0)


class TestRegistryForSpec:
    def test_rules_drive_crdt_choice(self):
        spec = make_mini_tournament_spec()
        from repro.spec.effects import ConvergencePolicy

        spec.rules.set("enrolled", ConvergencePolicy.REM_WINS)
        registry = registry_for_spec(spec)
        assert isinstance(registry.create(predicate_key("enrolled")), RWSet)
        assert isinstance(registry.create(predicate_key("player")), AWSet)

    def test_numeric_predicates_get_counters(self):
        b = SpecBuilder("n")
        b.predicate("stock", "Item", numeric=True)
        registry = registry_for_spec(b.build())
        assert isinstance(
            registry.create(counter_key("stock", ("i1",))), PNCounter
        )


class TestExecution:
    def test_effects_translated(self):
        spec = make_mini_tournament_spec()
        sim, cluster, executor = build(spec)
        done = []
        executor.execute("us-east", "add_player", {"p": "p1"}, done.append)
        executor.execute("us-east", "add_tourn", {"t": "t1"}, done.append)
        settle(sim)
        executor.execute(
            "us-east", "enroll", {"p": "p1", "t": "t1"}, done.append
        )
        settle(sim)
        assert done == ["add_player", "add_tourn", "enroll"]
        replica = cluster.replica("us-east")
        assert ("p1", "t1") in replica.get_object(
            predicate_key("enrolled")
        ).value()

    def test_missing_argument_rejected(self):
        spec = make_mini_tournament_spec()
        _sim, _cluster, executor = build(spec)
        with pytest.raises(SpecError, match="missing argument"):
            executor.execute("us-east", "enroll", {"p": "p1"})

    def test_precondition_rejects_invalid_origin_state(self):
        """Enrolling in a nonexistent tournament is refused locally."""
        spec = make_mini_tournament_spec()
        sim, _cluster, executor = build(spec)
        done = []
        executor.execute("us-east", "add_player", {"p": "p1"}, done.append)
        settle(sim)
        executor.execute(
            "us-east", "enroll", {"p": "p1", "t": "ghost"}, done.append
        )
        settle(sim)
        assert done == ["add_player", "enroll_rejected"]
        assert executor.rejected == 1

    def test_precondition_check_can_be_disabled(self):
        spec = make_mini_tournament_spec()
        sim = Simulator()
        cluster = Cluster(sim, registry_for_spec(spec))
        executor = SpecExecutor(spec, cluster, check_preconditions=False)
        done = []
        executor.execute(
            "us-east", "enroll", {"p": "p1", "t": "ghost"}, done.append
        )
        settle(sim)
        assert done == ["enroll"]
        assert executor.audit("us-east")  # violation visible

    def test_numeric_effects(self):
        b = SpecBuilder("shop")
        b.predicate("stock", "Item", numeric=True)
        b.invariant("forall(Item: i) :- stock(i) >= 0")
        b.operation("restock", "Item: i", incr=["stock(i) 5"])
        b.operation("buy", "Item: i", decr=["stock(i)"])
        spec = b.build()
        sim, cluster, executor = build(spec)
        executor.execute("us-east", "restock", {"i": "widget"})
        settle(sim)
        executor.execute("us-east", "buy", {"i": "widget"})
        settle(sim)
        key = counter_key("stock", ("widget",))
        assert cluster.replica("us-east").get_object(key).value() == 4

    def test_numeric_precondition_rejects_oversell(self):
        b = SpecBuilder("shop2")
        b.predicate("stock", "Item", numeric=True)
        b.invariant("forall(Item: i) :- stock(i) >= 0")
        b.operation("buy", "Item: i", decr=["stock(i)"])
        spec = b.build()
        sim, _cluster, executor = build(spec)
        done = []
        executor.execute("us-east", "buy", {"i": "widget"}, done.append)
        settle(sim)
        assert done == ["buy_rejected"]  # stock is 0


class TestWildcardsAndTouch:
    def test_ipa_patched_spec_runs_mechanically(self):
        """The analysis output (wildcard clears, touches, rule changes)
        executes without any hand-written code."""
        spec = make_mini_tournament_spec()
        result = run_ipa(spec)
        patched = result.modified
        sim, cluster, executor = build(patched)
        executor.execute("us-east", "add_player", {"p": "p1"})
        executor.execute("us-east", "add_tourn", {"t": "t1"})
        settle(sim)
        executor.execute("us-west", "enroll", {"p": "p1", "t": "t1"})
        executor.execute("eu-west", "rem_tourn", {"t": "t1"})
        settle(sim)
        assert cluster.converged()
        for region in cluster.regions:
            assert executor.audit(region) == []


class TestCompensations:
    def capacity_setup(self):
        b = SpecBuilder("cap")
        b.predicate("enrolled", "Player", "Tournament")
        b.parameter("Capacity", 2)
        b.invariant(
            "forall(Tournament: t) :- #enrolled(*, t) <= Capacity"
        )
        b.operation(
            "enroll", "Player: p, Tournament: t", true=["enrolled(p, t)"]
        )
        spec = b.build()
        result = run_ipa(spec)
        assert result.compensations
        sim, cluster, executor = build(
            result.modified, compensations=result.compensations
        )
        return sim, cluster, executor

    def test_trim_compensation_repairs_oversell(self):
        sim, cluster, executor = self.capacity_setup()
        # Three concurrent enrolments against capacity 2: each origin
        # sees a valid local state, the merge oversells.
        for index, region in enumerate(cluster.regions):
            executor.execute(
                region, "enroll", {"p": f"p{index}", "t": "t1"}
            )
        settle(sim)
        assert executor.audit("us-east")  # oversold before repair
        executor.apply_compensations("us-east")
        settle(sim)
        for region in cluster.regions:
            assert executor.audit(region) == []

    def test_trim_groups_by_tournament(self):
        sim, cluster, executor = self.capacity_setup()
        for index, region in enumerate(cluster.regions):
            executor.execute(
                region, "enroll", {"p": f"p{index}", "t": "t1"}
            )
        executor.execute("us-east", "enroll", {"p": "px", "t": "t2"})
        settle(sim)
        executor.apply_compensations("us-east")
        settle(sim)
        enrolled = cluster.replica("us-east").get_object(
            predicate_key("enrolled")
        ).value()
        # t2's single enrolment is untouched.
        assert ("px", "t2") in enrolled
        assert sum(1 for _p, t in enrolled if t == "t1") <= 2


class TestMaterialize:
    def test_round_trip(self):
        spec = make_mini_tournament_spec()
        sim, cluster, executor = build(spec)
        executor.execute("us-east", "add_player", {"p": "p1"})
        settle(sim)
        domain = domain_of_values(
            spec, {"Player": ["p1"], "Tournament": ["t1"]}
        )
        model = materialize(cluster.replica("us-east"), spec, domain)
        from repro.logic.ast import Atom

        player = spec.schema.pred("player")
        (p1,) = domain.of(spec.schema.sorts["Player"])
        assert model.holds(Atom(player, (p1,)))
