"""Differential soundness: analysis verdicts vs. runtime behaviour.

The central claim of the paper is that an application whose analysis
reports no unresolved conflicts evolves only through invariant-valid
states under *any* weakly-consistent execution.  These tests check that
claim end to end: random concurrent schedules of specification
operations run through the generic executor on the replicated store,
and every replica's state is audited against the very invariant
formulas the analysis reasoned about.

For specs IPA repaired eagerly: zero violations, always.  For specs it
flagged for compensation: zero violations after the compensating read.
And as a sanity check on the tests themselves, the *unmodified* specs
do produce violations under the same schedules.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import run_ipa
from repro.runtime import SpecExecutor, registry_for_spec
from repro.sim import Simulator
from repro.sim.latency import REGIONS
from repro.spec import SpecBuilder
from repro.store import Cluster

from tests.conftest import make_mini_tournament_spec

PLAYERS = ("p1", "p2", "p3")
TOURNAMENTS = ("t1", "t2")


def mini_schedule_ops(rng: random.Random, count: int):
    """A random schedule for the mini-tournament spec."""
    ops = []
    for _ in range(count):
        kind = rng.choice(
            ["add_player", "add_tourn", "rem_tourn", "enroll", "enroll"]
        )
        args = {}
        if kind in ("add_player", "enroll"):
            args["p"] = rng.choice(PLAYERS)
        if kind in ("add_tourn", "rem_tourn", "enroll"):
            args["t"] = rng.choice(TOURNAMENTS)
        ops.append((rng.choice(REGIONS), kind, args, rng.uniform(0, 120)))
    return ops


def run_schedule(spec, ops, compensations=()):
    sim = Simulator()
    cluster = Cluster(sim, registry_for_spec(spec))
    executor = SpecExecutor(spec, cluster, compensations=compensations)
    # Seed a base population so interesting races can happen.
    if "add_player" in spec.operations:
        for player in PLAYERS:
            executor.execute(REGIONS[0], "add_player", {"p": player})
    if "add_tourn" in spec.operations:
        for tournament in TOURNAMENTS:
            executor.execute(REGIONS[0], "add_tourn", {"t": tournament})
    sim.run(until=sim.now + 2_000.0)
    for region, op_name, args, offset in ops:
        sim.at(
            sim.now + offset,
            lambda r=region, o=op_name, a=args: executor.execute(r, o, a),
        )
    sim.run(until=sim.now + 5_000.0)
    assert cluster.converged()
    return cluster, executor


class TestMiniTournamentSoundness:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(4, 12))
    @settings(max_examples=25, deadline=None)
    def test_repaired_spec_never_violates(self, seed, count):
        rng = random.Random(seed)
        ops = mini_schedule_ops(rng, count)
        spec = make_mini_tournament_spec()
        result = run_ipa(spec)
        assert result.is_invariant_preserving
        _cluster, executor = run_schedule(result.modified, ops)
        for region in REGIONS:
            assert executor.audit(region) == [], (seed, count)

    def test_unmodified_spec_violates_under_some_schedule(self):
        """Sanity: the audit actually catches violations."""
        spec = make_mini_tournament_spec()
        violating_runs = 0
        for seed in range(12):
            rng = random.Random(seed)
            ops = mini_schedule_ops(rng, 10)
            _cluster, executor = run_schedule(spec, ops)
            if any(executor.audit(region) for region in REGIONS):
                violating_runs += 1
        assert violating_runs > 0


def capacity_spec():
    b = SpecBuilder("capacity")
    b.predicate("enrolled", "Player", "Tournament")
    b.parameter("Capacity", 2)
    b.invariant("forall(Tournament: t) :- #enrolled(*, t) <= Capacity")
    b.operation(
        "enroll", "Player: p, Tournament: t", true=["enrolled(p, t)"]
    )
    b.operation(
        "disenroll", "Player: p, Tournament: t", false=["enrolled(p, t)"]
    )
    return b.build()


class TestCompensationSoundness:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_compensated_spec_valid_after_repairing_read(self, seed):
        rng = random.Random(seed)
        spec = capacity_spec()
        result = run_ipa(spec)
        assert result.compensations
        ops = []
        for _ in range(10):
            kind = rng.choice(["enroll", "enroll", "enroll", "disenroll"])
            ops.append(
                (
                    rng.choice(REGIONS),
                    kind,
                    {
                        "p": rng.choice(PLAYERS),
                        "t": rng.choice(TOURNAMENTS),
                    },
                    rng.uniform(0, 100),
                )
            )
        cluster, executor = run_schedule(
            result.modified, ops, compensations=result.compensations
        )
        # The compensating read repairs whatever the merge oversold.
        executor.apply_compensations(REGIONS[0])
        cluster.sim.run(until=cluster.sim.now + 2_000.0)
        for region in REGIONS:
            assert executor.audit(region) == [], seed


def mutex_spec():
    b = SpecBuilder("mutex")
    b.predicate("active", "Tournament")
    b.predicate("finished", "Tournament")
    b.invariant("forall(Tournament: t) :- not (active(t) and finished(t))")
    b.operation("begin", "Tournament: t", true=["active(t)"])
    b.operation(
        "finish", "Tournament: t",
        true=["finished(t)"], false=["active(t)"],
    )
    return b.build()


class TestMutexSoundness:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_repaired_mutex_never_violates(self, seed):
        rng = random.Random(seed)
        spec = mutex_spec()
        result = run_ipa(spec)
        assert result.is_invariant_preserving and not result.flagged
        sim = Simulator()
        cluster = Cluster(sim, registry_for_spec(result.modified))
        executor = SpecExecutor(result.modified, cluster)
        for _ in range(10):
            op = rng.choice(["begin", "finish"])
            region = rng.choice(REGIONS)
            sim.at(
                sim.now + rng.uniform(0, 100),
                lambda r=region, o=op: executor.execute(
                    r, o, {"t": rng.choice(TOURNAMENTS)}
                ),
            )
        sim.run(until=sim.now + 5_000.0)
        assert cluster.converged()
        for region in REGIONS:
            assert executor.audit(region) == [], seed
