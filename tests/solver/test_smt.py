"""Bounded model finder façade tests."""

import pytest

from repro.logic.ast import (
    Atom,
    Card,
    Cmp,
    Exists,
    ForAll,
    IntConst,
    Not,
    NumPred,
    Param,
    PredicateDecl,
    Sort,
    Var,
    Wildcard,
)
from repro.logic.grounding import Domain
from repro.solver.models import evaluate
from repro.solver.smt import BoundedModelFinder

P = Sort("Player")
T = Sort("Tournament")
player = PredicateDecl("player", (P,))
tournament = PredicateDecl("tournament", (T,))
enrolled = PredicateDecl("enrolled", (P, T))
stock = PredicateDecl("stock", (T,), numeric=True)
p = Var("p", P)
t = Var("t", T)

REF_INTEGRITY = ForAll((p, t), enrolled(p, t) >> (player(p) & tournament(t)))


@pytest.fixture
def finder():
    return BoundedModelFinder(
        Domain.uniform([P, T], 2), params={"Capacity": 1}
    )


class TestCheck:
    def test_satisfiable_invariant(self, finder):
        result = finder.check(REF_INTEGRITY)
        assert result.sat
        assert evaluate(REF_INTEGRITY, result.model)

    def test_model_is_counterexample(self, finder):
        dom = finder.domain
        p0, t0 = dom.of(P)[0], dom.of(T)[0]
        result = finder.check(
            REF_INTEGRITY,
            Atom(enrolled, (p0, t0)),
        )
        assert result.sat
        assert result.model.holds(Atom(enrolled, (p0, t0)))
        assert result.model.holds(Atom(player, (p0,)))
        assert result.model.holds(Atom(tournament, (t0,)))

    def test_unsat_contradiction(self, finder):
        dom = finder.domain
        p0, t0 = dom.of(P)[0], dom.of(T)[0]
        result = finder.check(
            REF_INTEGRITY,
            Atom(enrolled, (p0, t0)),
            Not(Atom(tournament, (t0,))),
        )
        assert not result.sat
        assert result.model is None
        assert not bool(result)

    def test_capacity_param(self, finder):
        dom = finder.domain
        t0 = dom.of(T)[0]
        capacity = ForAll(
            (t,), Cmp("<=", Card(enrolled, (Wildcard(P), t)), Param("Capacity"))
        )
        both = [
            Atom(enrolled, (dom.of(P)[0], t0)),
            Atom(enrolled, (dom.of(P)[1], t0)),
        ]
        assert not finder.check(capacity, *both).sat
        assert finder.check(capacity, both[0]).sat

    def test_numeric_state_decoded(self, finder):
        dom = finder.domain
        t0 = dom.of(T)[0]
        result = finder.check(Cmp("==", NumPred(stock, (t0,)), IntConst(3)))
        assert result.sat
        assert result.model.value(NumPred(stock, (t0,))) == 3

    def test_existential_witness(self, finder):
        result = finder.check(Exists((p,), Atom(player, (p,))))
        assert result.sat
        assert any(
            result.model.holds(Atom(player, (c,)))
            for c in finder.domain.of(P)
        )


class TestIsValid:
    def test_tautology(self, finder):
        assert finder.is_valid(
            ForAll((p,), Atom(player, (p,)) | ~Atom(player, (p,)))
        )

    def test_invalid_formula(self, finder):
        assert not finder.is_valid(ForAll((p,), Atom(player, (p,))))

    def test_validity_under_assumptions(self, finder):
        dom = finder.domain
        p0, t0 = dom.of(P)[0], dom.of(T)[0]
        # Under the invariant and the enrolment fact, the tournament
        # necessarily exists.
        assert finder.is_valid(
            Atom(tournament, (t0,)),
            REF_INTEGRITY,
            Atom(enrolled, (p0, t0)),
        )


class TestModelEvaluationAgreement:
    def test_every_sat_model_satisfies_query(self, finder):
        dom = finder.domain
        p0 = dom.of(P)[0]
        queries = [
            REF_INTEGRITY,
            Exists((t,), Atom(tournament, (t,))),
            ForAll((t,), Atom(tournament, (t,)) >> Atom(player, (p0,))),
        ]
        result = finder.check(*queries)
        assert result.sat
        for query in queries:
            assert evaluate(query, result.model)
