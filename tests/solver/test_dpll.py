"""CDCL SAT solver tests: units, fuzzing against brute force."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.solver.dpll import FALSE_LIT, TRUE_LIT, SatSolver


def brute_force_sat(n, clauses):
    for bits in itertools.product([False, True], repeat=n):
        if all(
            any((lit > 0) == bits[abs(lit) - 1] for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def build(n, clauses):
    solver = SatSolver()
    for _ in range(n):
        solver.new_var()
    for clause in clauses:
        solver.add_clause(list(clause))
    return solver


class TestBasics:
    def test_empty_formula_sat(self):
        assert SatSolver().solve()

    def test_single_unit(self):
        solver = build(1, [[1]])
        assert solver.solve()
        assert solver.value(1) is True
        assert solver.value(-1) is False

    def test_conflicting_units(self):
        solver = build(1, [[1], [-1]])
        assert not solver.solve()

    def test_implication_chain(self):
        clauses = [[-i, i + 1] for i in range(1, 10)] + [[1]]
        solver = build(10, clauses)
        assert solver.solve()
        assert all(solver.value(i) for i in range(1, 11))

    def test_unsat_pigeonhole_2_1(self):
        # Two pigeons, one hole.
        solver = build(2, [[1], [2], [-1, -2]])
        assert not solver.solve()

    def test_tautological_clause_ignored(self):
        solver = build(2, [[1, -1], [2]])
        assert solver.solve()
        assert solver.value(2) is True

    def test_duplicate_literals_collapsed(self):
        solver = build(1, [[1, 1, 1]])
        assert solver.solve()
        assert solver.value(1) is True

    def test_empty_clause_unsat(self):
        solver = build(1, [[]])
        assert not solver.solve()

    def test_unknown_literal_rejected(self):
        solver = SatSolver()
        with pytest.raises(SolverError):
            solver.add_clause([1])

    def test_xor_chain(self):
        # x1 xor x2 = 1 encoded in CNF.
        solver = build(2, [[1, 2], [-1, -2]])
        assert solver.solve()
        assert solver.value(1) != solver.value(2)


class TestPseudoLiterals:
    def test_true_lit_satisfies_clause(self):
        solver = build(1, [[TRUE_LIT, 1]])
        assert solver.solve()

    def test_false_lit_removed(self):
        solver = build(1, [[FALSE_LIT, 1]])
        assert solver.solve()
        assert solver.value(1) is True

    def test_clause_of_false_lits_unsat(self):
        solver = build(1, [[FALSE_LIT]])
        assert not solver.solve()

    def test_value_of_pseudo(self):
        solver = SatSolver()
        solver.solve()
        assert solver.value(TRUE_LIT) is True
        assert solver.value(FALSE_LIT) is False


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = build(2, [[-1, 2]])
        assert solver.solve(assumptions=[1])
        assert solver.value(1) is True
        assert solver.value(2) is True

    def test_conflicting_assumption(self):
        solver = build(1, [[-1]])
        assert not solver.solve(assumptions=[1])

    def test_resolvable_after_assumption_removed(self):
        solver = build(1, [[-1]])
        assert not solver.solve(assumptions=[1])
        assert solver.solve()
        assert solver.value(1) is False

    def test_multiple_assumptions(self):
        solver = build(3, [[-1, -2, 3]])
        assert solver.solve(assumptions=[1, 2])
        assert solver.value(3) is True

    def test_incompatible_assumptions(self):
        solver = build(2, [[-1, -2]])
        assert not solver.solve(assumptions=[1, 2])


class TestModelSoundness:
    def test_model_satisfies_all_clauses(self):
        clauses = [
            [1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3],
        ]
        solver = build(3, clauses)
        assert solver.solve()
        for clause in clauses:
            assert any(solver.value(lit) for lit in clause)


@st.composite
def random_cnf(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    m = draw(st.integers(min_value=1, max_value=30))
    clauses = []
    for _ in range(m):
        k = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.sampled_from([-1, 1]))
            * draw(st.integers(min_value=1, max_value=n))
            for _ in range(k)
        ]
        clauses.append(clause)
    return n, clauses


class TestFuzzAgainstBruteForce:
    @given(random_cnf())
    @settings(max_examples=300, deadline=None)
    def test_agrees_with_brute_force(self, problem):
        n, clauses = problem
        solver = build(n, clauses)
        got = solver.solve()
        assert got == brute_force_sat(n, clauses)
        if got:
            for clause in clauses:
                assert any(solver.value(lit) for lit in clause)

    @given(random_cnf())
    @settings(max_examples=100, deadline=None)
    def test_resolve_is_stable(self, problem):
        """Solving twice gives the same satisfiability."""
        n, clauses = problem
        solver = build(n, clauses)
        first = solver.solve()
        second = solver.solve()
        assert first == second
