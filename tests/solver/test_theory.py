"""Order-encoded integer theory tests.

Exhaustive checks over small ranges: every comparison between every
combination of counter values must agree with Python integers.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.logic.ast import (
    Add,
    Atom,
    Card,
    Cmp,
    Const,
    IntConst,
    NumPred,
    Param,
    PredicateDecl,
    Sort,
    Wildcard,
)
from repro.logic.grounding import Domain
from repro.solver.cnf import CnfBuilder
from repro.solver.dpll import SatSolver
from repro.solver.theory import (
    AddExpr,
    ConstInt,
    OrderInt,
    SumOfBools,
    TheoryEncoder,
)

S = Sort("S")
counter = PredicateDecl("counter", (S,), numeric=True)
flag = PredicateDecl("flag", (S,))
c0, c1, c2 = Const("c0", S), Const("c1", S), Const("c2", S)
DOMAIN = Domain({S: (c0, c1, c2)})


def fresh():
    solver = SatSolver()
    builder = CnfBuilder(solver)
    encoder = TheoryEncoder(builder, DOMAIN, params={"K": 2}, int_bound=5)
    return solver, builder, encoder


def pin_int(solver, order_int, value):
    """Force an order-encoded integer to one value."""
    for k in range(order_int.lo + 1, order_int.hi + 1):
        lit = order_int.ge_lit(k)
        solver.add_clause([lit] if value >= k else [-lit])


class TestOrderInt:
    def test_chain_gives_consistent_decode(self):
        for value in range(-5, 6):
            solver, builder, encoder = fresh()
            x = encoder.int_for(NumPred(counter, (c0,)))
            pin_int(solver, x, value)
            assert solver.solve()
            assert x.decode(lambda lit: bool(solver.value(lit))) == value

    def test_shared_across_formulas(self):
        solver, builder, encoder = fresh()
        x1 = encoder.int_for(NumPred(counter, (c0,)))
        x2 = encoder.int_for(NumPred(counter, (c0,)))
        assert x1 is x2

    def test_empty_range_rejected(self):
        solver = SatSolver()
        builder = CnfBuilder(solver)
        with pytest.raises(SolverError):
            OrderInt(builder, 3, 1)


class TestComparisons:
    @pytest.mark.parametrize("op", ["<=", "<", ">=", ">", "==", "!="])
    def test_var_vs_constant_exhaustive(self, op):
        import operator

        py_ops = {
            "<=": operator.le, "<": operator.lt, ">=": operator.ge,
            ">": operator.gt, "==": operator.eq, "!=": operator.ne,
        }
        for value in range(-5, 6):
            for bound in range(-3, 4):
                solver, builder, encoder = fresh()
                formula = encoder.encode(
                    Cmp(op, NumPred(counter, (c0,)), IntConst(bound))
                )
                builder.assert_formula(formula)
                x = encoder.int_for(NumPred(counter, (c0,)))
                pin_int(solver, x, value)
                expected = py_ops[op](value, bound)
                assert solver.solve() == expected, (op, value, bound)

    def test_var_vs_var(self):
        for a_val in range(-2, 3):
            for b_val in range(-2, 3):
                solver, builder, encoder = fresh()
                formula = encoder.encode(
                    Cmp(
                        "<",
                        NumPred(counter, (c0,)),
                        NumPred(counter, (c1,)),
                    )
                )
                builder.assert_formula(formula)
                pin_int(solver, encoder.int_for(NumPred(counter, (c0,))), a_val)
                pin_int(solver, encoder.int_for(NumPred(counter, (c1,))), b_val)
                assert solver.solve() == (a_val < b_val)

    def test_param_resolution(self):
        solver, builder, encoder = fresh()
        formula = encoder.encode(
            Cmp("==", NumPred(counter, (c0,)), Param("K"))
        )
        builder.assert_formula(formula)
        assert solver.solve()
        x = encoder.int_for(NumPred(counter, (c0,)))
        assert x.decode(lambda lit: bool(solver.value(lit))) == 2

    def test_unknown_param_raises(self):
        solver, builder, encoder = fresh()
        with pytest.raises(SolverError, match="parameter"):
            encoder.encode(
                Cmp("==", NumPred(counter, (c0,)), Param("Missing"))
            )


class TestCardinality:
    def test_card_counts_true_atoms(self):
        for true_count in range(4):
            solver, builder, encoder = fresh()
            card = Card(flag, (Wildcard(S),))
            formula = encoder.encode(
                Cmp("==", card, IntConst(true_count))
            )
            builder.assert_formula(formula)
            consts = [c0, c1, c2]
            for index, const in enumerate(consts):
                lit = builder.lit_for_atom(Atom(flag, (const,)))
                solver.add_clause([lit if index < true_count else -lit])
            assert solver.solve() == (true_count <= 3)

    def test_card_bound_forces_atoms(self):
        solver, builder, encoder = fresh()
        card = Card(flag, (Wildcard(S),))
        builder.assert_formula(
            encoder.encode(Cmp(">=", card, IntConst(3)))
        )
        assert solver.solve()
        for const in (c0, c1, c2):
            lit = builder.lit_for_atom(Atom(flag, (const,)))
            assert solver.value(lit) is True

    def test_card_upper_bound_unsat_when_exceeded(self):
        solver, builder, encoder = fresh()
        card = Card(flag, (Wildcard(S),))
        builder.assert_formula(
            encoder.encode(Cmp("<=", card, IntConst(1)))
        )
        for const in (c0, c1):
            solver.add_clause([builder.lit_for_atom(Atom(flag, (const,)))])
        assert not solver.solve()


class TestAddition:
    @given(
        st.integers(min_value=-3, max_value=3),
        st.integers(min_value=-3, max_value=3),
        st.integers(min_value=-6, max_value=6),
    )
    @settings(max_examples=120, deadline=None)
    def test_sum_comparison_matches_python(self, a_val, b_val, bound):
        solver, builder, encoder = fresh()
        total = Add((NumPred(counter, (c0,)), NumPred(counter, (c1,))))
        builder.assert_formula(
            encoder.encode(Cmp(">=", total, IntConst(bound)))
        )
        pin_int(solver, encoder.int_for(NumPred(counter, (c0,))), a_val)
        pin_int(solver, encoder.int_for(NumPred(counter, (c1,))), b_val)
        assert solver.solve() == (a_val + b_val >= bound)

    def test_sum_with_constant_delta(self):
        # The conflict encoding's "post = pre + delta" shape.
        for pre in range(-2, 3):
            for delta in (-2, 1, 3):
                solver, builder, encoder = fresh()
                post = NumPred(counter, (c1,))
                pre_term = NumPred(counter, (c0,))
                builder.assert_formula(
                    encoder.encode(
                        Cmp("==", post, Add((pre_term, IntConst(delta))))
                    )
                )
                pin_int(solver, encoder.int_for(pre_term), pre)
                assert solver.solve()
                decoded = encoder.int_for(post).decode(
                    lambda lit: bool(solver.value(lit))
                )
                assert decoded == pre + delta


class TestSumOfBools:
    def test_exhaustive_small(self):
        for pattern in range(8):
            solver = SatSolver()
            builder = CnfBuilder(solver)
            lits = [solver.new_var() for _ in range(3)]
            total = SumOfBools(builder, lits)
            for index, lit in enumerate(lits):
                value = bool(pattern & (1 << index))
                solver.add_clause([lit if value else -lit])
            assert solver.solve()
            expected = bin(pattern).count("1")
            for threshold in range(5):
                got = solver.value(total.ge_lit(threshold))
                assert got == (expected >= threshold), (
                    pattern, threshold,
                )
