"""Harder SAT instances: exercise clause learning and restarts."""

import itertools

from repro.solver.dpll import SatSolver


def pigeonhole(pigeons: int, holes: int) -> tuple[int, list[list[int]]]:
    """PHP(p, h): p pigeons into h holes.  UNSAT when p > h."""
    def var(pigeon: int, hole: int) -> int:
        return pigeon * holes + hole + 1

    clauses: list[list[int]] = []
    for pigeon in range(pigeons):
        clauses.append([var(pigeon, hole) for hole in range(holes)])
    for hole in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            clauses.append([-var(p1, hole), -var(p2, hole)])
    return pigeons * holes, clauses


def solve(n: int, clauses: list[list[int]]) -> tuple[bool, SatSolver]:
    solver = SatSolver()
    for _ in range(n):
        solver.new_var()
    for clause in clauses:
        solver.add_clause(list(clause))
    return solver.solve(), solver


class TestPigeonhole:
    def test_php_4_4_sat(self):
        n, clauses = pigeonhole(4, 4)
        sat, solver = solve(n, clauses)
        assert sat
        for clause in clauses:
            assert any(solver.value(lit) for lit in clause)

    def test_php_5_4_unsat(self):
        n, clauses = pigeonhole(5, 4)
        sat, _solver = solve(n, clauses)
        assert not sat

    def test_php_6_5_unsat(self):
        n, clauses = pigeonhole(6, 5)
        sat, _solver = solve(n, clauses)
        assert not sat


class TestParity:
    def test_xor_chain_unsat(self):
        """x1 ^ x2, x2 ^ x3, ..., with contradictory parity: UNSAT."""
        n = 12
        clauses = []
        for index in range(1, n):
            a, b = index, index + 1
            clauses.append([a, b])
            clauses.append([-a, -b])  # a xor b
        # The chain forces strict alternation from x1=True, so x_n is
        # True exactly when n is odd.
        clauses.append([1])
        clauses.append([-n] if n % 2 == 0 else [n])
        sat, solver = solve(n, clauses)
        assert sat  # consistent parity
        clauses[-1] = [n] if n % 2 == 0 else [-n]
        sat2, _ = solve(n, clauses)
        assert not sat2


class TestGraphColouring:
    def test_k4_is_not_3_colourable(self):
        """K4 needs 4 colours."""
        vertices, colours = 4, 3

        def var(v: int, c: int) -> int:
            return v * colours + c + 1

        clauses = []
        for v in range(vertices):
            clauses.append([var(v, c) for c in range(colours)])
        for v1, v2 in itertools.combinations(range(vertices), 2):
            for c in range(colours):
                clauses.append([-var(v1, c), -var(v2, c)])
        sat, _ = solve(vertices * colours, clauses)
        assert not sat

    def test_cycle_is_2_colourable_iff_even(self):
        def build(n_vertices: int):
            colours = 2

            def var(v: int, c: int) -> int:
                return v * colours + c + 1

            clauses = []
            for v in range(n_vertices):
                clauses.append([var(v, c) for c in range(colours)])
                clauses.append([-var(v, 0), -var(v, 1)])
            for v in range(n_vertices):
                u = (v + 1) % n_vertices
                for c in range(colours):
                    clauses.append([-var(v, c), -var(u, c)])
            return n_vertices * colours, clauses

        sat_even, _ = solve(*build(8))
        sat_odd, _ = solve(*build(9))
        assert sat_even
        assert not sat_odd
