"""Tseitin encoder tests: equivalence with the reference evaluator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.ast import (
    And,
    Atom,
    Const,
    FalseF,
    Iff,
    Implies,
    Not,
    Or,
    PredicateDecl,
    Sort,
    TrueF,
)
from repro.logic.grounding import Domain
from repro.solver.cnf import CnfBuilder, RawLit
from repro.solver.dpll import FALSE_LIT, TRUE_LIT, SatSolver
from repro.solver.models import Model, evaluate

S = Sort("S")
a = PredicateDecl("a", (S,))
b = PredicateDecl("b", (S,))
c0, c1 = Const("c0", S), Const("c1", S)
ATOMS = [a(c0), a(c1), b(c0), b(c1)]
DOMAIN = Domain({S: (c0, c1)})


def formulas():
    base = st.one_of(
        st.sampled_from(ATOMS), st.just(TrueF()), st.just(FalseF())
    )

    def extend(children):
        return st.one_of(
            st.builds(Not, children),
            st.builds(lambda l, r: And((l, r)), children, children),
            st.builds(lambda l, r: Or((l, r)), children, children),
            st.builds(Implies, children, children),
            st.builds(Iff, children, children),
        )

    return st.recursive(base, extend, max_leaves=10)


class TestTseitinSemantics:
    @given(formulas())
    @settings(max_examples=200, deadline=None)
    def test_models_match_evaluator(self, formula):
        """Asserting F, then fixing each atom, matches evaluate()."""
        import itertools

        for values in itertools.product([False, True], repeat=len(ATOMS)):
            solver = SatSolver()
            builder = CnfBuilder(solver)
            builder.assert_formula(formula)
            for atom, value in zip(ATOMS, values):
                lit = builder.lit_for_atom(atom)
                solver.add_clause([lit if value else -lit])
            model = Model(domain=DOMAIN, atoms=dict(zip(ATOMS, values)))
            assert solver.solve() == evaluate(formula, model)


class TestGates:
    def test_and_gate_constant_folding(self):
        builder = CnfBuilder(SatSolver())
        lit = builder.tseitin(And((TrueF(), TrueF())))
        assert lit == TRUE_LIT
        lit = builder.tseitin(And((TrueF(), FalseF())))
        assert lit == FALSE_LIT

    def test_or_gate_constant_folding(self):
        builder = CnfBuilder(SatSolver())
        assert builder.tseitin(Or((FalseF(), FalseF()))) == FALSE_LIT
        assert builder.tseitin(Or((TrueF(), FalseF()))) == TRUE_LIT

    def test_structural_sharing(self):
        solver = SatSolver()
        builder = CnfBuilder(solver)
        f = And((a(c0), b(c0)))
        lit1 = builder.tseitin(f)
        lit2 = builder.tseitin(And((a(c0), b(c0))))
        assert lit1 == lit2

    def test_atom_vars_shared(self):
        builder = CnfBuilder(SatSolver())
        assert builder.lit_for_atom(a(c0)) == builder.lit_for_atom(a(c0))
        assert builder.lit_for_atom(a(c0)) != builder.lit_for_atom(a(c1))

    def test_not_is_literal_negation(self):
        builder = CnfBuilder(SatSolver())
        lit = builder.tseitin(a(c0))
        assert builder.tseitin(Not(a(c0))) == -lit

    def test_raw_lit_passthrough(self):
        solver = SatSolver()
        builder = CnfBuilder(solver)
        var = solver.new_var()
        assert builder.tseitin(RawLit(var)) == var

    def test_iff_constant_cases(self):
        builder = CnfBuilder(SatSolver())
        lit = builder.lit_for_atom(a(c0))
        assert builder.tseitin(Iff(TrueF(), a(c0))) == lit
        assert builder.tseitin(Iff(FalseF(), a(c0))) == -lit

    def test_iff_same_literal(self):
        builder = CnfBuilder(SatSolver())
        assert builder.tseitin(Iff(a(c0), a(c0))) == TRUE_LIT
        assert builder.tseitin(Iff(a(c0), Not(a(c0)))) == FALSE_LIT


class TestErrors:
    def test_cmp_rejected(self):
        from repro.errors import SolverError
        from repro.logic.ast import Cmp, IntConst, PredicateDecl

        import pytest

        stock = PredicateDecl("stock_cnf", (S,), numeric=True)
        builder = CnfBuilder(SatSolver())
        with pytest.raises(SolverError, match="theory"):
            builder.tseitin(Cmp(">=", stock(c0), IntConst(0)))
