"""Hypothesis properties for the integer theory encoder."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.ast import (
    Add,
    Atom,
    Card,
    Cmp,
    Const,
    IntConst,
    NumPred,
    PredicateDecl,
    Sort,
    Wildcard,
)
from repro.logic.grounding import Domain
from repro.solver.cnf import CnfBuilder
from repro.solver.dpll import SatSolver
from repro.solver.theory import TheoryEncoder

S = Sort("S")
counter = PredicateDecl("ctr", (S,), numeric=True)
flag = PredicateDecl("flg", (S,))
CONSTS = tuple(Const(f"c{i}", S) for i in range(3))
DOMAIN = Domain({S: CONSTS})


def fresh(int_bound=6):
    solver = SatSolver()
    builder = CnfBuilder(solver)
    encoder = TheoryEncoder(builder, DOMAIN, params={}, int_bound=int_bound)
    return solver, builder, encoder


def pin(solver, order_int, value):
    for k in range(order_int.lo + 1, order_int.hi + 1):
        lit = order_int.ge_lit(k)
        solver.add_clause([lit] if value >= k else [-lit])


class TestThreeWaySums:
    @given(
        st.integers(-2, 2), st.integers(-2, 2), st.integers(-2, 2),
        st.integers(-6, 6),
        st.sampled_from(["<=", "<", ">=", ">", "==", "!="]),
    )
    @settings(max_examples=150, deadline=None)
    def test_chained_add_matches_python(self, a, b, c, bound, op):
        import operator

        ops = {
            "<=": operator.le, "<": operator.lt, ">=": operator.ge,
            ">": operator.gt, "==": operator.eq, "!=": operator.ne,
        }
        solver, builder, encoder = fresh()
        total = Add(
            (
                NumPred(counter, (CONSTS[0],)),
                NumPred(counter, (CONSTS[1],)),
                NumPred(counter, (CONSTS[2],)),
            )
        )
        builder.assert_formula(
            encoder.encode(Cmp(op, total, IntConst(bound)))
        )
        for const, value in zip(CONSTS, (a, b, c)):
            pin(solver, encoder.int_for(NumPred(counter, (const,))), value)
        assert solver.solve() == ops[op](a + b + c, bound)


class TestCardVsCounter:
    @given(
        st.lists(st.booleans(), min_size=3, max_size=3),
        st.integers(-2, 4),
    )
    @settings(max_examples=100, deadline=None)
    def test_card_compared_to_numpred(self, flags, counter_value):
        solver, builder, encoder = fresh()
        card = Card(flag, (Wildcard(S),))
        num = NumPred(counter, (CONSTS[0],))
        builder.assert_formula(encoder.encode(Cmp("<=", card, num)))
        for const, value in zip(CONSTS, flags):
            lit = builder.lit_for_atom(Atom(flag, (const,)))
            solver.add_clause([lit if value else -lit])
        pin(solver, encoder.int_for(num), counter_value)
        assert solver.solve() == (sum(flags) <= counter_value)


class TestNegationConsistency:
    @given(
        st.integers(-3, 3), st.integers(-3, 3),
        st.sampled_from(["<=", "<", ">=", ">", "==", "!="]),
    )
    @settings(max_examples=100, deadline=None)
    def test_cmp_and_negation_partition(self, x_val, bound, op):
        """Exactly one of Cmp and its negation is satisfiable once the
        variable is pinned."""
        from repro.logic.transform import negate

        outcomes = []
        for formula_builder in (
            lambda num: Cmp(op, num, IntConst(bound)),
            lambda num: negate(Cmp(op, num, IntConst(bound))),
        ):
            solver, builder, encoder = fresh()
            num = NumPred(counter, (CONSTS[0],))
            builder.assert_formula(encoder.encode(formula_builder(num)))
            pin(solver, encoder.int_for(num), x_val)
            outcomes.append(solver.solve())
        assert outcomes.count(True) == 1
